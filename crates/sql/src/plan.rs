//! Name resolution and expression compilation.
//!
//! Before execution, every [`Expr`] is compiled into an [`RExpr`] whose
//! column references are flat indices into the joined row, whose aggregate
//! calls are indices into a deduplicated aggregate table, and whose
//! uncorrelated subqueries are pre-evaluated into value sets.

use crate::ast::{AggFunc, BinOp, Expr};
use crate::error::{Result, SqlError};
use crate::value::Value;
use std::collections::HashSet;

/// The schema of a joined row: one entry per flat column position.
#[derive(Debug, Clone)]
pub struct Schema {
    /// `(table_alias, column_name)` for each flat position.
    pub columns: Vec<(String, String)>,
}

impl Schema {
    /// Resolves a possibly-qualified column name to a flat index.
    /// Unqualified names must be unambiguous across the joined tables.
    pub fn resolve(&self, table: Option<&str>, name: &str) -> Result<usize> {
        let mut found: Option<usize> = None;
        for (i, (alias, col)) in self.columns.iter().enumerate() {
            if !col.eq_ignore_ascii_case(name) {
                continue;
            }
            if let Some(t) = table {
                if !alias.eq_ignore_ascii_case(t) {
                    continue;
                }
            }
            if found.is_some() {
                return Err(SqlError::UnknownColumn(format!("{name} is ambiguous")));
            }
            found = Some(i);
        }
        found.ok_or_else(|| {
            let full = match table {
                Some(t) => format!("{t}.{name}"),
                None => name.to_string(),
            };
            SqlError::UnknownColumn(full)
        })
    }
}

/// One deduplicated aggregate call: the function and its compiled argument
/// (`None` for `COUNT(*)`).
#[derive(Debug, Clone)]
pub struct AggCall {
    /// Aggregate function.
    pub func: AggFunc,
    /// Compiled argument.
    pub arg: Option<RExpr>,
    /// The original AST node, used for structural deduplication.
    pub source: Expr,
}

/// A compiled expression: columns are flat indices, aggregates are indices
/// into the plan's aggregate table, subqueries are materialized sets.
#[derive(Debug, Clone)]
pub enum RExpr {
    /// Flat column index into the joined row.
    Col(usize),
    /// Literal.
    Lit(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<RExpr>,
        /// Right operand.
        right: Box<RExpr>,
    },
    /// Unary minus.
    Neg(Box<RExpr>),
    /// Logical NOT.
    Not(Box<RExpr>),
    /// Aggregate result lookup (only valid post-grouping).
    Agg(usize),
    /// Scalar function call.
    Scalar {
        /// Which function.
        func: crate::ast::ScalarFunc,
        /// Compiled arguments.
        args: Vec<RExpr>,
    },
    /// Membership in a pre-evaluated set (`[NOT] IN (subquery)` or a
    /// literal-only IN list).
    InSet {
        /// Tested expression.
        expr: Box<RExpr>,
        /// Normalized keys of the set elements.
        set: HashSet<String>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `[NOT] IN` over general expressions, evaluated per row.
    InList {
        /// Tested expression.
        expr: Box<RExpr>,
        /// List items.
        list: Vec<RExpr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `[NOT] BETWEEN` (inclusive).
    Between {
        /// Tested expression.
        expr: Box<RExpr>,
        /// Lower bound.
        low: Box<RExpr>,
        /// Upper bound.
        high: Box<RExpr>,
        /// True for `NOT BETWEEN`.
        negated: bool,
    },
    /// `[NOT] LIKE` with `%`/`_` wildcards.
    Like {
        /// Tested expression.
        expr: Box<RExpr>,
        /// Pattern.
        pattern: Box<RExpr>,
        /// True for `NOT LIKE`.
        negated: bool,
    },
}

/// Compilation context: resolves subqueries via a callback into the
/// executor (breaking the module cycle).
pub struct Compiler<'a> {
    /// Schema of the current FROM product.
    pub schema: &'a Schema,
    /// Deduplicated aggregate calls collected so far.
    pub aggs: Vec<AggCall>,
    /// Executes an uncorrelated subquery, returning the normalized keys of
    /// its single output column.
    pub run_subquery: &'a dyn Fn(&crate::ast::SelectStmt) -> Result<HashSet<String>>,
}

impl<'a> Compiler<'a> {
    /// Creates a compiler for a schema.
    pub fn new(
        schema: &'a Schema,
        run_subquery: &'a dyn Fn(&crate::ast::SelectStmt) -> Result<HashSet<String>>,
    ) -> Self {
        Compiler { schema, aggs: Vec::new(), run_subquery }
    }

    /// Compiles an expression.
    pub fn compile(&mut self, expr: &Expr) -> Result<RExpr> {
        match expr {
            Expr::Column { table, name } => {
                Ok(RExpr::Col(self.schema.resolve(table.as_deref(), name)?))
            }
            Expr::Literal(v) => Ok(RExpr::Lit(v.clone())),
            Expr::Binary { op, left, right } => Ok(RExpr::Binary {
                op: *op,
                left: Box::new(self.compile(left)?),
                right: Box::new(self.compile(right)?),
            }),
            Expr::Neg(e) => Ok(RExpr::Neg(Box::new(self.compile(e)?))),
            Expr::Not(e) => Ok(RExpr::Not(Box::new(self.compile(e)?))),
            Expr::Aggregate { func, arg } => {
                // Structural dedup so `count(*)` in HAVING and in the
                // projection share one accumulator.
                if let Some(i) = self.aggs.iter().position(|a| &a.source == expr) {
                    return Ok(RExpr::Agg(i));
                }
                let compiled_arg = match arg {
                    Some(a) => {
                        if a.has_aggregate() {
                            return Err(SqlError::Unsupported("nested aggregates".to_string()));
                        }
                        Some(self.compile(a)?)
                    }
                    None => None,
                };
                self.aggs.push(AggCall { func: *func, arg: compiled_arg, source: expr.clone() });
                Ok(RExpr::Agg(self.aggs.len() - 1))
            }
            Expr::InSubquery { expr, subquery, negated } => {
                let set = (self.run_subquery)(subquery)?;
                Ok(RExpr::InSet { expr: Box::new(self.compile(expr)?), set, negated: *negated })
            }
            Expr::InList { expr, list, negated } => {
                let compiled = self.compile(expr)?;
                // Literal-only lists become a set for O(1) membership.
                if list.iter().all(|e| matches!(e, Expr::Literal(_))) {
                    let set = list
                        .iter()
                        .map(|e| match e {
                            Expr::Literal(v) => v.group_key(),
                            _ => unreachable!(),
                        })
                        .collect();
                    return Ok(RExpr::InSet { expr: Box::new(compiled), set, negated: *negated });
                }
                let items: Result<Vec<RExpr>> = list.iter().map(|e| self.compile(e)).collect();
                Ok(RExpr::InList { expr: Box::new(compiled), list: items?, negated: *negated })
            }
            Expr::Between { expr, low, high, negated } => Ok(RExpr::Between {
                expr: Box::new(self.compile(expr)?),
                low: Box::new(self.compile(low)?),
                high: Box::new(self.compile(high)?),
                negated: *negated,
            }),
            Expr::Like { expr, pattern, negated } => Ok(RExpr::Like {
                expr: Box::new(self.compile(expr)?),
                pattern: Box::new(self.compile(pattern)?),
                negated: *negated,
            }),
            Expr::Scalar { func, args } => Ok(RExpr::Scalar {
                func: *func,
                args: args.iter().map(|a| self.compile(a)).collect::<Result<_>>()?,
            }),
        }
    }
}

/// Evaluates a compiled expression against a flat row, with aggregate
/// results (empty until grouping has run).
pub fn eval(expr: &RExpr, row: &[Value], aggs: &[Value]) -> Result<Value> {
    match expr {
        RExpr::Col(i) => Ok(row[*i].clone()),
        RExpr::Lit(v) => Ok(v.clone()),
        RExpr::Agg(i) => aggs
            .get(*i)
            .cloned()
            .ok_or_else(|| SqlError::Eval("aggregate used outside GROUP BY context".into())),
        RExpr::Neg(e) => match eval(e, row, aggs)? {
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            Value::Null => Ok(Value::Null),
            Value::Str(_) => Err(SqlError::Eval("cannot negate a string".into())),
        },
        RExpr::Not(e) => {
            let v = eval(e, row, aggs)?;
            if v.is_null() {
                Ok(Value::Null)
            } else {
                Ok(Value::Int(i64::from(!v.is_truthy())))
            }
        }
        RExpr::Binary { op, left, right } => {
            let l = eval(left, row, aggs)?;
            match op {
                // SQL three-valued logic: FALSE AND NULL = FALSE,
                // TRUE OR NULL = TRUE, otherwise NULL propagates.
                BinOp::And => {
                    if !l.is_null() && !l.is_truthy() {
                        return Ok(Value::Int(0)); // short-circuit on FALSE
                    }
                    let r = eval(right, row, aggs)?;
                    if !r.is_null() && !r.is_truthy() {
                        return Ok(Value::Int(0));
                    }
                    if l.is_null() || r.is_null() {
                        return Ok(Value::Null);
                    }
                    Ok(Value::Int(1))
                }
                BinOp::Or => {
                    if l.is_truthy() {
                        return Ok(Value::Int(1)); // short-circuit on TRUE
                    }
                    let r = eval(right, row, aggs)?;
                    if r.is_truthy() {
                        return Ok(Value::Int(1));
                    }
                    if l.is_null() || r.is_null() {
                        return Ok(Value::Null);
                    }
                    Ok(Value::Int(0))
                }
                BinOp::Eq | BinOp::Neq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    let r = eval(right, row, aggs)?;
                    let Some(ord) = l.sql_cmp(&r) else {
                        return Ok(Value::Null);
                    };
                    use std::cmp::Ordering::*;
                    let b = match op {
                        BinOp::Eq => ord == Equal,
                        BinOp::Neq => ord != Equal,
                        BinOp::Lt => ord == Less,
                        BinOp::Le => ord != Greater,
                        BinOp::Gt => ord == Greater,
                        BinOp::Ge => ord != Less,
                        _ => unreachable!(),
                    };
                    Ok(Value::Int(i64::from(b)))
                }
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                    let r = eval(right, row, aggs)?;
                    if l.is_null() || r.is_null() {
                        return Ok(Value::Null);
                    }
                    arith(*op, &l, &r)
                }
            }
        }
        RExpr::InSet { expr, set, negated } => {
            let v = eval(expr, row, aggs)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let member = set.contains(&v.group_key());
            Ok(Value::Int(i64::from(member != *negated)))
        }
        RExpr::InList { expr, list, negated } => {
            let v = eval(expr, row, aggs)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut member = false;
            for item in list {
                let w = eval(item, row, aggs)?;
                if v.key_eq(&w) {
                    member = true;
                    break;
                }
            }
            Ok(Value::Int(i64::from(member != *negated)))
        }
        RExpr::Scalar { func, args } => {
            use crate::ast::ScalarFunc as F;
            let vals: Vec<Value> =
                args.iter().map(|a| eval(a, row, aggs)).collect::<Result<_>>()?;
            if vals.iter().any(Value::is_null) {
                return Ok(Value::Null);
            }
            let numeric = |v: &Value, what: &str| {
                v.as_f64().ok_or_else(|| SqlError::Eval(format!("{what} expects a number")))
            };
            Ok(match func {
                F::Abs => match &vals[0] {
                    Value::Int(i) => Value::Int(i.abs()),
                    other => Value::Float(numeric(other, "ABS")?.abs()),
                },
                F::Round => {
                    let x = numeric(&vals[0], "ROUND")?;
                    // Clamp to the range where the scale factor stays
                    // finite and meaningful for f64 (±18 covers every
                    // representable decimal position).
                    let digits = match vals.get(1) {
                        Some(d) => {
                            aggsky_core::num::to_i32_sat(numeric(d, "ROUND")?).clamp(-18, 18)
                        }
                        None => 0,
                    };
                    let scale = 10f64.powi(digits);
                    Value::Float((x * scale).round() / scale)
                }
                F::Floor => Value::Float(numeric(&vals[0], "FLOOR")?.floor()),
                F::Ceil => Value::Float(numeric(&vals[0], "CEIL")?.ceil()),
                F::Sqrt => {
                    let x = numeric(&vals[0], "SQRT")?;
                    if aggsky_core::ord::lt(x, 0.0) {
                        Value::Null
                    } else {
                        Value::Float(x.sqrt())
                    }
                }
                F::Lower | F::Upper | F::Length => match &vals[0] {
                    Value::Str(s) => match func {
                        F::Lower => Value::Str(s.to_lowercase()),
                        F::Upper => Value::Str(s.to_uppercase()),
                        F::Length => {
                            Value::Int(i64::try_from(s.chars().count()).unwrap_or(i64::MAX))
                        }
                        _ => unreachable!(),
                    },
                    _ => return Err(SqlError::Eval(format!("{func:?} expects a string"))),
                },
            })
        }
        RExpr::Between { expr, low, high, negated } => {
            let v = eval(expr, row, aggs)?;
            let lo = eval(low, row, aggs)?;
            let hi = eval(high, row, aggs)?;
            let (Some(ge), Some(le)) = (v.sql_cmp(&lo), v.sql_cmp(&hi)) else {
                return Ok(Value::Null);
            };
            use std::cmp::Ordering::*;
            let inside = ge != Less && le != Greater;
            Ok(Value::Int(i64::from(inside != *negated)))
        }
        RExpr::Like { expr, pattern, negated } => {
            let v = eval(expr, row, aggs)?;
            let p = eval(pattern, row, aggs)?;
            match (&v, &p) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::Str(s), Value::Str(pat)) => {
                    let hit = like_match(s.as_bytes(), pat.as_bytes());
                    Ok(Value::Int(i64::from(hit != *negated)))
                }
                _ => Err(SqlError::Eval("LIKE requires string operands".into())),
            }
        }
    }
}

/// SQL LIKE matcher: `%` matches any run (including empty), `_` matches one
/// character. Case-sensitive, byte-oriented. Uses the classic greedy
/// two-pointer algorithm with single-level backtracking — `O(|s|·|p|)`
/// worst case, so adversarial patterns like `'%%%%%%%%z'` cannot blow up.
fn like_match(s: &[u8], p: &[u8]) -> bool {
    let (mut si, mut pi) = (0usize, 0usize);
    let mut star: Option<usize> = None;
    let mut mark = 0usize;
    while si < s.len() {
        if pi < p.len() && (p[pi] == b'_' || (p[pi] != b'%' && p[pi] == s[si])) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == b'%' {
            star = Some(pi);
            mark = si;
            pi += 1;
        } else if let Some(sp) = star {
            // Backtrack: let the last '%' absorb one more byte.
            pi = sp + 1;
            mark += 1;
            si = mark;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == b'%' {
        pi += 1;
    }
    pi == p.len()
}

fn arith(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    // Integer arithmetic stays integral except division, which is float
    // (the paper's `1.0*count(*)/(x.num*y.num)` relies on float division;
    // making `/` always float avoids the classic integer-division trap
    // without changing that query's result).
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        return Ok(match op {
            BinOp::Add => Value::Int(a + b),
            BinOp::Sub => Value::Int(a - b),
            BinOp::Mul => Value::Int(a * b),
            BinOp::Div => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Float(*a as f64 / *b as f64)
                }
            }
            _ => unreachable!(),
        });
    }
    let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) else {
        return Err(SqlError::Eval(format!("arithmetic on non-numeric values {l} and {r}")));
    };
    Ok(match op {
        BinOp::Add => Value::Float(a + b),
        BinOp::Sub => Value::Float(a - b),
        BinOp::Mul => Value::Float(a * b),
        BinOp::Div => {
            if aggsky_core::ord::eq(b, 0.0) {
                Value::Null
            } else {
                Value::Float(a / b)
            }
        }
        _ => unreachable!(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema {
            columns: vec![
                ("t".into(), "a".into()),
                ("t".into(), "b".into()),
                ("u".into(), "a".into()),
            ],
        }
    }

    #[test]
    fn resolution_rules() {
        let s = schema();
        assert_eq!(s.resolve(None, "b").unwrap(), 1);
        assert_eq!(s.resolve(Some("u"), "a").unwrap(), 2);
        assert_eq!(s.resolve(Some("T"), "A").unwrap(), 0, "case-insensitive");
        assert!(matches!(s.resolve(None, "a"), Err(SqlError::UnknownColumn(_))), "ambiguous");
        assert!(s.resolve(None, "zzz").is_err());
    }

    #[test]
    fn eval_arithmetic_and_logic() {
        let row = vec![Value::Int(3), Value::Float(2.0), Value::Int(10)];
        let no_sub = |_: &crate::ast::SelectStmt| -> Result<HashSet<String>> { unreachable!() };
        let s = schema();
        let mut c = Compiler::new(&s, &no_sub);
        let e = crate::parser_test_expr("t.a * b + 1");
        let r = c.compile(&e).unwrap();
        assert_eq!(eval(&r, &row, &[]).unwrap(), Value::Float(7.0));
        let e = crate::parser_test_expr("t.a > 2 and u.a <= 10");
        let r = c.compile(&e).unwrap();
        assert_eq!(eval(&r, &row, &[]).unwrap(), Value::Int(1));
        let e = crate::parser_test_expr("not (t.a = 3)");
        let r = c.compile(&e).unwrap();
        assert_eq!(eval(&r, &row, &[]).unwrap(), Value::Int(0));
    }

    #[test]
    fn division_is_float_and_by_zero_is_null() {
        let row: Vec<Value> = vec![];
        let e = RExpr::Binary {
            op: BinOp::Div,
            left: Box::new(RExpr::Lit(Value::Int(1))),
            right: Box::new(RExpr::Lit(Value::Int(2))),
        };
        assert_eq!(eval(&e, &row, &[]).unwrap(), Value::Float(0.5));
        let z = RExpr::Binary {
            op: BinOp::Div,
            left: Box::new(RExpr::Lit(Value::Int(1))),
            right: Box::new(RExpr::Lit(Value::Int(0))),
        };
        assert_eq!(eval(&z, &row, &[]).unwrap(), Value::Null);
    }

    #[test]
    fn aggregates_are_deduplicated() {
        let s = schema();
        let no_sub = |_: &crate::ast::SelectStmt| -> Result<HashSet<String>> { unreachable!() };
        let mut c = Compiler::new(&s, &no_sub);
        let e1 = crate::parser_test_expr("count(*)");
        let e2 = crate::parser_test_expr("count(*) + max(t.a)");
        c.compile(&e1).unwrap();
        c.compile(&e2).unwrap();
        assert_eq!(c.aggs.len(), 2, "count(*) shared, max added");
    }
}
