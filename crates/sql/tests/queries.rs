//! End-to-end query tests for the mini SQL engine, anchored on the paper's
//! running examples (Figures 1-4, Algorithm 1).

use aggsky_sql::{Database, SqlError, Value};

/// Loads the Figure 1 movie table, including the `num` attribute Algorithm 1
/// requires (movies per director, pre-computed).
fn movie_db() -> Database {
    let mut db = Database::new();
    db.execute(
        "CREATE TABLE movie (title TEXT, year INT, director TEXT, \
         pop FLOAT, qual FLOAT, num INT)",
    )
    .unwrap();
    db.execute(
        "INSERT INTO movie VALUES \
         ('Avatar', 2009, 'Cameron', 404, 8.0, 2), \
         ('Batman Begins', 2005, 'Nolan', 371, 8.3, 1), \
         ('Kill Bill', 2003, 'Tarantino', 313, 8.2, 2), \
         ('Pulp Fiction', 1994, 'Tarantino', 557, 9.0, 2), \
         ('Star Wars (V)', 1980, 'Kershner', 362, 8.8, 1), \
         ('Terminator (II)', 1991, 'Cameron', 326, 8.6, 2), \
         ('The Godfather', 1972, 'Coppola', 531, 9.2, 2), \
         ('The Lord of the Rings', 2001, 'Jackson', 518, 8.7, 1), \
         ('The Room', 2003, 'Wiseau', 10, 3.2, 1), \
         ('Dracula', 1992, 'Coppola', 76, 7.3, 2)",
    )
    .unwrap();
    db
}

fn column_strings(db: &mut Database, sql: &str) -> Vec<String> {
    let mut rows: Vec<String> =
        db.execute(sql).unwrap().rows.into_iter().map(|r| r[0].to_string()).collect();
    rows.sort();
    rows
}

#[test]
fn basic_select_and_where() {
    let mut db = movie_db();
    let r =
        db.execute("SELECT title, pop FROM movie WHERE year >= 2003 ORDER BY pop DESC").unwrap();
    assert_eq!(r.columns, vec!["title", "pop"]);
    assert_eq!(r.rows.len(), 4);
    assert_eq!(r.rows[0][0].to_string(), "Avatar");
}

#[test]
fn example_1_record_skyline() {
    // Figure 2: {Pulp Fiction, The Godfather}.
    let mut db = movie_db();
    let got = column_strings(&mut db, "SELECT title FROM movie SKYLINE OF pop MAX, qual MAX");
    assert_eq!(got, vec!["Pulp Fiction", "The Godfather"]);
}

#[test]
fn example_2_aggregate_query() {
    // Figure 3: directors with max(qual) >= 8.0 and their maxima.
    let mut db = movie_db();
    let r = db
        .execute(
            "SELECT director, max(pop), max(qual) FROM movie \
             GROUP BY director HAVING max(qual) >= 8.0 ORDER BY director",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 6);
    let cameron = &r.rows[0];
    assert_eq!(cameron[0].to_string(), "Cameron");
    assert_eq!(cameron[1], Value::Float(404.0));
    assert_eq!(cameron[2], Value::Float(8.6));
    let names: Vec<String> = r.rows.iter().map(|row| row[0].to_string()).collect();
    assert_eq!(names, vec!["Cameron", "Coppola", "Jackson", "Kershner", "Nolan", "Tarantino"]);
}

#[test]
fn example_3_aggregate_skyline() {
    // Figure 4(b): {Coppola, Jackson, Kershner, Tarantino}.
    let mut db = movie_db();
    let got = column_strings(
        &mut db,
        "SELECT director FROM movie GROUP BY director SKYLINE OF pop MAX, qual MAX",
    );
    assert_eq!(got, vec!["Coppola", "Jackson", "Kershner", "Tarantino"]);
}

#[test]
fn aggregate_skyline_gamma_widens_result() {
    let mut db = movie_db();
    let at_half = column_strings(
        &mut db,
        "SELECT director FROM movie GROUP BY director SKYLINE OF pop MAX, qual MAX GAMMA 0.5",
    );
    let at_one = column_strings(
        &mut db,
        "SELECT director FROM movie GROUP BY director SKYLINE OF pop MAX, qual MAX GAMMA 1.0",
    );
    assert!(at_one.len() >= at_half.len());
    for d in &at_half {
        assert!(at_one.contains(d), "{d} lost when raising gamma");
    }
    // γ below the asymmetry bound is rejected.
    let err = db
        .execute("SELECT director FROM movie GROUP BY director SKYLINE OF pop MAX GAMMA 0.3")
        .unwrap_err();
    assert!(matches!(err, SqlError::Eval(_)));
}

#[test]
fn algorithm_1_sql_aggregate_skyline() {
    // The paper's direct SQL implementation (Algorithm 1), adapted to the
    // movie table's column names, must produce Figure 4(b).
    let mut db = movie_db();
    let got = column_strings(
        &mut db,
        "select distinct director from movie where director not in (\
           select X.director from movie X, movie Y \
           where ((Y.pop > X.pop and Y.qual >= X.qual) or \
                  (Y.pop >= X.pop and Y.qual > X.qual)) \
           group by X.director, Y.director \
           having 1.0*count(*)/(X.num*Y.num) > .5)",
    );
    assert_eq!(got, vec!["Coppola", "Jackson", "Kershner", "Tarantino"]);
}

#[test]
fn algorithm_1_matches_native_skyline_clause() {
    let mut db = movie_db();
    let native = column_strings(
        &mut db,
        "SELECT director FROM movie GROUP BY director SKYLINE OF pop MAX, qual MAX",
    );
    let sql = column_strings(
        &mut db,
        "select distinct director from movie where director not in (\
           select X.director from movie X, movie Y \
           where ((Y.pop > X.pop and Y.qual >= X.qual) or \
                  (Y.pop >= X.pop and Y.qual > X.qual)) \
           group by X.director, Y.director \
           having 1.0*count(*)/(X.num*Y.num) > .5)",
    );
    assert_eq!(native, sql);
}

#[test]
fn self_join_counts_pairs() {
    let mut db = movie_db();
    let r = db.execute("SELECT count(*) FROM movie X, movie Y").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(100));
}

#[test]
fn aggregates_without_group_by() {
    let mut db = movie_db();
    let r =
        db.execute("SELECT count(*), min(pop), max(pop), avg(qual), sum(num) FROM movie").unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0], Value::Int(10));
    assert_eq!(r.rows[0][1], Value::Float(10.0));
    assert_eq!(r.rows[0][2], Value::Float(557.0));
    let avg = r.rows[0][3].as_f64().unwrap();
    assert!((avg - 7.93).abs() < 1e-9, "avg {avg}");
    assert_eq!(r.rows[0][4], Value::Float(16.0));
}

#[test]
fn count_on_empty_table_is_zero() {
    let mut db = Database::new();
    db.execute("CREATE TABLE empty (a INT)").unwrap();
    let r = db.execute("SELECT count(*) FROM empty").unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(0)]]);
}

#[test]
fn distinct_and_limit() {
    let mut db = movie_db();
    let r = db.execute("SELECT DISTINCT director FROM movie").unwrap();
    assert_eq!(r.rows.len(), 7);
    let r = db.execute("SELECT title FROM movie ORDER BY qual DESC LIMIT 3").unwrap();
    assert_eq!(r.rows.len(), 3);
    assert_eq!(r.rows[0][0].to_string(), "The Godfather");
}

#[test]
fn min_direction_in_record_skyline() {
    // Cheapest + best: minimize year, maximize quality.
    let mut db = movie_db();
    let got = column_strings(&mut db, "SELECT title FROM movie SKYLINE OF year MIN, qual MAX");
    assert!(got.contains(&"The Godfather".to_string()), "{got:?}");
    assert!(!got.contains(&"The Room".to_string()));
}

#[test]
fn in_list_and_not_in_list() {
    let mut db = movie_db();
    let got =
        column_strings(&mut db, "SELECT title FROM movie WHERE director IN ('Wiseau', 'Nolan')");
    assert_eq!(got, vec!["Batman Begins", "The Room"]);
    let got = column_strings(
        &mut db,
        "SELECT DISTINCT director FROM movie WHERE director NOT IN ('Wiseau')",
    );
    assert_eq!(got.len(), 6);
}

#[test]
fn wildcard_projection_and_aliases() {
    let mut db = movie_db();
    let r = db.execute("SELECT * FROM movie LIMIT 1").unwrap();
    assert_eq!(r.columns, vec!["title", "year", "director", "pop", "qual", "num"]);
    let r = db.execute("SELECT pop AS popularity, qual quality FROM movie LIMIT 1").unwrap();
    assert_eq!(r.columns, vec!["popularity", "quality"]);
}

#[test]
fn error_paths() {
    let mut db = movie_db();
    assert!(matches!(db.execute("SELECT nope FROM movie"), Err(SqlError::UnknownColumn(_))));
    assert!(matches!(db.execute("SELECT * FROM nope"), Err(SqlError::UnknownTable(_))));
    assert!(matches!(db.execute("CREATE TABLE movie (a INT)"), Err(SqlError::TableExists(_))));
    assert!(matches!(
        db.execute("SELECT a FROM movie X, movie X"),
        Err(SqlError::Parse(_) | SqlError::UnknownColumn(_))
    ));
    assert!(db.execute("SELECT pop + title FROM movie").is_err());
}

#[test]
fn drop_table() {
    let mut db = movie_db();
    db.execute("DROP TABLE movie").unwrap();
    assert!(db.execute("SELECT * FROM movie").is_err());
}

#[test]
fn null_semantics() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (a INT, b INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, NULL), (2, 5), (NULL, NULL)").unwrap();
    // NULL comparisons are unknown, so they never satisfy WHERE.
    let r = db.execute("SELECT a FROM t WHERE b > 0").unwrap();
    assert_eq!(r.rows.len(), 1);
    // Aggregates skip NULLs; COUNT(*) does not.
    let r = db.execute("SELECT count(*), count(b), sum(b), avg(a) FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(3));
    assert_eq!(r.rows[0][1], Value::Int(1));
    assert_eq!(r.rows[0][2], Value::Float(5.0));
    assert_eq!(r.rows[0][3], Value::Float(1.5));
}

#[test]
fn group_by_expression_key() {
    let mut db = movie_db();
    // Group by decade.
    let r =
        db.execute("SELECT count(*) FROM movie GROUP BY year / 10 ORDER BY count(*) DESC").unwrap();
    let total: i64 = r
        .rows
        .iter()
        .map(|row| match row[0] {
            Value::Int(i) => i,
            _ => 0,
        })
        .sum();
    assert_eq!(total, 10);
}

#[test]
fn programmatic_bulk_load_matches_sql_insert() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (a FLOAT, b FLOAT)").unwrap();
    db.insert_rows(
        "t",
        vec![vec![Value::Int(1), Value::Float(2.0)], vec![Value::Float(3.0), Value::Float(4.0)]],
    )
    .unwrap();
    assert_eq!(db.table_len("t").unwrap(), 2);
    let r = db.execute("SELECT a FROM t ORDER BY a").unwrap();
    assert_eq!(r.rows[0][0], Value::Float(1.0), "ints coerce into float columns");
}

#[test]
fn result_table_rendering() {
    let mut db = movie_db();
    let r = db.execute("SELECT title, qual FROM movie ORDER BY qual DESC LIMIT 2").unwrap();
    let table = r.to_table();
    assert!(table.contains("The Godfather"));
    assert!(table.contains("| title"));
}

#[test]
fn aggregate_skyline_on_three_dims() {
    let mut db = Database::new();
    db.execute("CREATE TABLE s (g TEXT, x FLOAT, y FLOAT, z FLOAT)").unwrap();
    db.execute(
        "INSERT INTO s VALUES \
         ('a', 10, 10, 10), ('a', 9, 9, 9), \
         ('b', 1, 1, 1), ('b', 2, 2, 2), \
         ('c', 1, 12, 1)",
    )
    .unwrap();
    let mut got: Vec<String> = db
        .execute("SELECT g FROM s GROUP BY g SKYLINE OF x MAX, y MAX, z MAX")
        .unwrap()
        .rows
        .into_iter()
        .map(|r| r[0].to_string())
        .collect();
    got.sort();
    assert_eq!(got, vec!["a", "c"]);
}

#[test]
fn between_inclusive_and_negated() {
    let mut db = movie_db();
    let got = column_strings(&mut db, "SELECT title FROM movie WHERE year BETWEEN 1991 AND 1994");
    assert_eq!(got, vec!["Dracula", "Pulp Fiction", "Terminator (II)"]);
    let r = db.execute("SELECT count(*) FROM movie WHERE year NOT BETWEEN 1991 AND 1994").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(7));
}

#[test]
fn like_wildcards() {
    let mut db = movie_db();
    let got = column_strings(&mut db, "SELECT title FROM movie WHERE title LIKE 'The %'");
    assert_eq!(got, vec!["The Godfather", "The Lord of the Rings", "The Room"]);
    let got = column_strings(&mut db, "SELECT title FROM movie WHERE title LIKE '%Bill'");
    assert_eq!(got, vec!["Kill Bill"]);
    let got = column_strings(&mut db, "SELECT title FROM movie WHERE title LIKE 'A_atar'");
    assert_eq!(got, vec!["Avatar"]);
    let got = column_strings(
        &mut db,
        "SELECT DISTINCT director FROM movie WHERE director NOT LIKE '%a%'",
    );
    assert_eq!(got, vec!["Kershner"]);
}

#[test]
fn delete_with_and_without_predicate() {
    let mut db = movie_db();
    let r = db.execute("DELETE FROM movie WHERE director = 'Wiseau'").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(1));
    assert_eq!(db.table_len("movie").unwrap(), 9);
    // Deleting Wiseau does not change the aggregate skyline (he was
    // dominated anyway) -- stability in action.
    let got = column_strings(
        &mut db,
        "SELECT director FROM movie GROUP BY director SKYLINE OF pop MAX, qual MAX",
    );
    assert_eq!(got, vec!["Coppola", "Jackson", "Kershner", "Tarantino"]);
    let r = db.execute("DELETE FROM movie").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(9));
    assert_eq!(db.table_len("movie").unwrap(), 0);
}

#[test]
fn update_rows_and_skyline_shift() {
    let mut db = movie_db();
    // A re-release makes The Room wildly popular and acclaimed.
    let r = db.execute("UPDATE movie SET pop = 600, qual = 9.5 WHERE title = 'The Room'").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(1));
    let got = column_strings(
        &mut db,
        "SELECT director FROM movie GROUP BY director SKYLINE OF pop MAX, qual MAX",
    );
    assert!(got.contains(&"Wiseau".to_string()), "{got:?}");
}

#[test]
fn update_rhs_sees_pre_update_row() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (a INT, b INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 10)").unwrap();
    db.execute("UPDATE t SET a = b, b = a").unwrap();
    let r = db.execute("SELECT a, b FROM t").unwrap();
    assert_eq!(r.rows[0], vec![Value::Int(10), Value::Int(1)], "swap semantics");
}

#[test]
fn update_coerces_into_float_columns() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (a FLOAT)").unwrap();
    db.execute("INSERT INTO t VALUES (1.5)").unwrap();
    db.execute("UPDATE t SET a = 2").unwrap();
    let r = db.execute("SELECT a FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Float(2.0));
}

#[test]
fn update_unknown_column_errors() {
    let mut db = movie_db();
    assert!(matches!(db.execute("UPDATE movie SET nope = 1"), Err(SqlError::UnknownColumn(_))));
}

#[test]
fn like_null_and_type_errors() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (s TEXT, n INT)").unwrap();
    db.execute("INSERT INTO t VALUES ('abc', 1), (NULL, 2)").unwrap();
    // NULL LIKE anything is unknown -> filtered out.
    let r = db.execute("SELECT n FROM t WHERE s LIKE '%b%'").unwrap();
    assert_eq!(r.rows.len(), 1);
    // LIKE on a number is a type error.
    assert!(db.execute("SELECT n FROM t WHERE n LIKE '1'").is_err());
}

#[test]
fn scalar_functions() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (s TEXT, x FLOAT)").unwrap();
    db.execute("INSERT INTO t VALUES ('Hello', -2.75), (NULL, 4.0)").unwrap();
    let r = db
        .execute(
            "SELECT abs(x), round(x), round(x, 1), floor(x), ceil(x), sqrt(x * x) \
             FROM t WHERE s = 'Hello'",
        )
        .unwrap();
    let row = &r.rows[0];
    assert_eq!(row[0], Value::Float(2.75));
    assert_eq!(row[1], Value::Float(-3.0));
    assert_eq!(row[2], Value::Float(-2.8));
    assert_eq!(row[3], Value::Float(-3.0));
    assert_eq!(row[4], Value::Float(-2.0));
    assert_eq!(row[5], Value::Float(2.75));
    let r = db.execute("SELECT lower(s), upper(s), length(s) FROM t WHERE x < 0").unwrap();
    assert_eq!(r.rows[0][0], Value::Str("hello".into()));
    assert_eq!(r.rows[0][1], Value::Str("HELLO".into()));
    assert_eq!(r.rows[0][2], Value::Int(5));
    // NULL propagation and negative sqrt.
    let r = db.execute("SELECT upper(s), sqrt(0 - x) FROM t WHERE x = 4.0").unwrap();
    assert_eq!(r.rows[0][0], Value::Null);
    assert_eq!(r.rows[0][1], Value::Null);
    // Scalars compose with aggregates and grouping.
    let r = db.execute("SELECT round(avg(abs(x)), 2) FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Float(3.38)); // (2.75 + 4)/2 = 3.375 -> 3.38
                                                  // Arity errors are parse-time.
    assert!(db.execute("SELECT abs(x, 1) FROM t").is_err());
    assert!(db.execute("SELECT nosuchfn(x) FROM t").is_err());
}

#[test]
fn scalar_in_where_group_and_order() {
    let mut db = movie_db();
    let got = column_strings(
        &mut db,
        "SELECT DISTINCT director FROM movie WHERE lower(director) LIKE 'c%'",
    );
    assert_eq!(got, vec!["Cameron", "Coppola"]);
    let r = db
        .execute(
            "SELECT length(director), count(*) FROM movie \
             GROUP BY length(director) ORDER BY length(director)",
        )
        .unwrap();
    // Nolan/Wiseau = 5/6, Cameron/Coppola/Jackson/Kershner = 7/8, Tarantino = 9.
    assert_eq!(r.rows.len(), 5);
    assert_eq!(r.rows[0][0], Value::Int(5));
}

#[test]
fn pushdown_preserves_results_on_joins() {
    let mut db = movie_db();
    // Single-table conjuncts on both sides of a self-join plus a residual
    // cross-table predicate: must match the unpushable all-residual form.
    let a = db
        .execute(
            "SELECT count(*) FROM movie X, movie Y \
             WHERE X.year >= 2000 AND Y.qual > 8.5 AND X.pop < Y.pop",
        )
        .unwrap();
    // Same predicate expressed so nothing obviously splits (OR blocks
    // conjunct splitting).
    let b = db
        .execute(
            "SELECT count(*) FROM movie X, movie Y \
             WHERE (X.year >= 2000 AND Y.qual > 8.5 AND X.pop < Y.pop) OR (1 = 0)",
        )
        .unwrap();
    assert_eq!(a.rows, b.rows);
}

#[test]
fn constant_false_where_is_empty_fast() {
    let mut db = movie_db();
    let r = db.execute("SELECT title FROM movie WHERE 1 = 2").unwrap();
    assert!(r.rows.is_empty());
    // ... but aggregates still produce their empty-input row.
    let r = db.execute("SELECT count(*) FROM movie WHERE 1 = 2").unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(0)]]);
    let r = db.execute("SELECT count(*) FROM movie WHERE 1 = 1 AND year > 2000").unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(5)]]);
}

#[test]
fn explain_shows_pushdown() {
    let db = movie_db();
    let plan = db
        .explain(
            "SELECT X.title FROM movie X, movie Y \
             WHERE X.year > 2000 AND X.pop < Y.pop ORDER BY X.title LIMIT 5",
        )
        .unwrap();
    assert!(plan.contains("SCAN movie AS X: filtered scan"), "{plan}");
    assert!(plan.contains("CROSS JOIN movie AS Y: full scan"), "{plan}");
    assert!(plan.contains("JOIN FILTER"), "{plan}");
    assert!(plan.contains("SORT"), "{plan}");
    assert!(plan.contains("LIMIT 5"), "{plan}");
    let plan = db
        .explain("SELECT director FROM movie GROUP BY director SKYLINE OF pop MAX, qual MAX")
        .unwrap();
    assert!(plan.contains("HASH AGGREGATE"), "{plan}");
    assert!(plan.contains("AGGREGATE SKYLINE: 2 attribute(s)"), "{plan}");
    let plan = db.explain("SELECT * FROM movie WHERE 2 < 1").unwrap();
    assert!(plan.contains("constant-false"), "{plan}");
}

#[test]
fn insert_into_select() {
    let mut db = movie_db();
    db.execute(
        "CREATE TABLE modern (title TEXT, year INT, director TEXT, \
                pop FLOAT, qual FLOAT, num INT)",
    )
    .unwrap();
    let r = db.execute("INSERT INTO modern SELECT * FROM movie WHERE year >= 2000").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(5));
    assert_eq!(db.table_len("modern").unwrap(), 5);
    // The copy behaves like a real table.
    let got = column_strings(&mut db, "SELECT title FROM modern SKYLINE OF pop MAX, qual MAX");
    assert_eq!(got, vec!["The Lord of the Rings"]);
    // Projection-based copy with reordered explicit columns.
    db.execute("CREATE TABLE flat (qual FLOAT, pop FLOAT)").unwrap();
    db.execute("INSERT INTO flat (pop, qual) SELECT pop, qual FROM movie").unwrap();
    let r = db.execute("SELECT max(qual), max(pop) FROM flat").unwrap();
    assert_eq!(r.rows[0][0], Value::Float(9.2));
    assert_eq!(r.rows[0][1], Value::Float(557.0));
    // Arity mismatch errors cleanly.
    assert!(db.execute("INSERT INTO flat SELECT pop FROM movie").is_err());
}

#[test]
fn three_valued_logic() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (a INT)").unwrap();
    db.execute("INSERT INTO t VALUES (NULL), (1)").unwrap();
    // NULL OR TRUE = TRUE: both rows pass.
    let r = db.execute("SELECT count(*) FROM t WHERE a = 1 OR 1 = 1").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(2));
    // NULL AND FALSE = FALSE; NOT(FALSE) = TRUE: both rows pass.
    let r = db.execute("SELECT count(*) FROM t WHERE NOT (a = 1 AND 1 = 0)").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(2));
    // NULL AND TRUE = NULL: only the non-null row passes.
    let r = db.execute("SELECT count(*) FROM t WHERE a = 1 AND 1 = 1").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(1));
}

#[test]
fn like_pathological_patterns_terminate_fast() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (s TEXT)").unwrap();
    let long = "a".repeat(2000);
    db.insert_rows("t", vec![vec![Value::Str(long)]]).unwrap();
    let start = std::time::Instant::now();
    let r = db.execute("SELECT count(*) FROM t WHERE s LIKE '%%%%%%%%%%%%%%%%%%%%z'").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(0));
    assert!(start.elapsed().as_secs_f64() < 1.0, "LIKE blew up");
    // Matching interleaved stars still work.
    let r = db.execute("SELECT count(*) FROM t WHERE s LIKE '%a%a%a%'").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(1));
    let r = db.execute("SELECT count(*) FROM t WHERE s LIKE 'a%'").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(1));
    let r = db.execute("SELECT count(*) FROM t WHERE s LIKE '_%b'").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(0));
}

#[test]
fn unicode_string_literals_survive() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (s TEXT)").unwrap();
    db.execute("INSERT INTO t VALUES ('héllo wörld 💫')").unwrap();
    let r = db.execute("SELECT s, length(s) FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Str("héllo wörld 💫".into()));
    assert_eq!(r.rows[0][1], Value::Int(13), "char count, not bytes");
    let r = db.execute("SELECT count(*) FROM t WHERE s = 'héllo wörld 💫'").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(1));
}

#[test]
fn inner_join_on_desugars_to_filtered_cross_product() {
    let mut db = Database::new();
    db.execute("CREATE TABLE d (name TEXT, country TEXT)").unwrap();
    db.execute("CREATE TABLE m (director TEXT, pop FLOAT)").unwrap();
    db.execute("INSERT INTO d VALUES ('Tarantino', 'US'), ('Kershner', 'US'), ('Wiseau', 'US')")
        .unwrap();
    db.execute("INSERT INTO m VALUES ('Tarantino', 557), ('Tarantino', 313), ('Kershner', 362)")
        .unwrap();
    let r = db
        .execute(
            "SELECT d.name, count(*) FROM d JOIN m ON d.name = m.director \
             GROUP BY d.name ORDER BY d.name",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 2, "Wiseau has no movies -> no join rows");
    assert_eq!(r.rows[0][0].to_string(), "Kershner");
    assert_eq!(r.rows[1][1], Value::Int(2));
    // INNER JOIN spelling and a WHERE mixed in.
    let r = db
        .execute("SELECT count(*) FROM d INNER JOIN m ON d.name = m.director WHERE m.pop > 350")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(2));
    // JOIN without ON is a parse error.
    assert!(db.execute("SELECT count(*) FROM d JOIN m").is_err());
}

#[test]
fn min_max_work_on_strings() {
    let mut db = movie_db();
    let r = db.execute("SELECT min(title), max(title) FROM movie").unwrap();
    assert_eq!(r.rows[0][0], Value::Str("Avatar".into()));
    assert_eq!(r.rows[0][1], Value::Str("The Room".into()));
    // SUM/AVG on strings stay errors.
    assert!(db.execute("SELECT sum(title) FROM movie").is_err());
    assert!(db.execute("SELECT avg(title) FROM movie").is_err());
}

#[test]
fn order_by_aggregate_in_grouped_query() {
    let mut db = movie_db();
    let r = db
        .execute(
            "SELECT director, count(*) FROM movie GROUP BY director \
             ORDER BY count(*) DESC, director ASC LIMIT 3",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 3);
    assert_eq!(r.rows[0][1], Value::Int(2));
    // Ties among the three 2-movie directors break alphabetically.
    assert_eq!(r.rows[0][0].to_string(), "Cameron");
    assert_eq!(r.rows[1][0].to_string(), "Coppola");
}

#[test]
fn in_subquery_must_be_single_column() {
    let mut db = movie_db();
    let err = db
        .execute("SELECT title FROM movie WHERE director IN (SELECT director, pop FROM movie)")
        .unwrap_err();
    assert!(matches!(err, SqlError::Eval(_)), "{err:?}");
}

#[test]
fn explain_covers_dml_and_skyline_record_form() {
    let db = movie_db();
    let plan = db.explain("DELETE FROM movie WHERE pop < 100").unwrap();
    assert!(plan.contains("DELETE FROM movie"), "{plan}");
    let plan = db.explain("SELECT title FROM movie SKYLINE OF pop MAX, qual MAX").unwrap();
    assert!(plan.contains("RECORD SKYLINE: 2 attribute(s)"), "{plan}");
}

#[test]
fn group_by_having_without_matching_groups_is_empty() {
    let mut db = movie_db();
    let r =
        db.execute("SELECT director FROM movie GROUP BY director HAVING count(*) > 99").unwrap();
    assert!(r.rows.is_empty());
}

#[test]
fn limit_zero_and_huge() {
    let mut db = movie_db();
    assert!(db.execute("SELECT title FROM movie LIMIT 0").unwrap().rows.is_empty());
    assert_eq!(db.execute("SELECT title FROM movie LIMIT 9999").unwrap().rows.len(), 10);
}

#[test]
fn division_semantics_in_queries() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (a INT, b INT)").unwrap();
    db.execute("INSERT INTO t VALUES (7, 2), (5, 0)").unwrap();
    let r = db.execute("SELECT a / b FROM t ORDER BY a").unwrap();
    assert_eq!(r.rows[0][0], Value::Null, "division by zero is NULL");
    assert_eq!(r.rows[1][0], Value::Float(3.5), "integer division is exact");
}
