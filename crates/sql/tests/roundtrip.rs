//! Round-trip testing of the SQL printer and parser on randomly generated
//! ASTs (`parse(print(ast)) == ast`), plus a no-panic/determinism check of
//! the executor on arbitrary generated queries over fixed tables.
//!
//! Random ASTs come from a small hand-rolled recursive generator driven by a
//! local splitmix64 stream (this crate deliberately has no dependencies, so
//! no property-testing framework and no shared datagen crate); every test
//! loops over fixed seeds and reports the failing seed.

use aggsky_sql::ast::*;
use aggsky_sql::{parse, Database, Statement, Value};

/// Minimal deterministic PRNG (splitmix64) for AST generation.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn index(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn flag(&mut self) -> bool {
        self.next() & 1 == 1
    }

    /// A random string of `0..=max_len` chars from `alphabet`.
    fn string(&mut self, alphabet: &[char], max_len: usize) -> String {
        let len = self.index(max_len + 1);
        (0..len).map(|_| alphabet[self.index(alphabet.len())]).collect()
    }
}

const IDENTS: [&str; 4] = ["c0", "c1", "c2", "zz"];
const STR_ALPHABET: &[char] = &[
    'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q', 'r', 's',
    't', 'u', 'v', 'w', 'x', 'y', 'z', ' ', '\'', '%', '_',
];
const LIKE_ALPHABET: &[char] = &[
    'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q', 'r', 's',
    't', 'u', 'v', 'w', 'x', 'y', 'z', '%', '_',
];
const BIN_OPS: [BinOp; 12] = [
    BinOp::Or,
    BinOp::And,
    BinOp::Eq,
    BinOp::Neq,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
];

fn literal(rng: &mut Rng) -> Expr {
    match rng.index(4) {
        0 => Expr::Literal(Value::Int(rng.index(1000) as i64)),
        1 => Expr::Literal(Value::Float(rng.index(10_000) as f64 / 8.0)),
        2 => Expr::Literal(Value::Str(rng.string(STR_ALPHABET, 8))),
        _ => Expr::Literal(Value::Null),
    }
}

fn column(rng: &mut Rng) -> Expr {
    let table = match rng.index(3) {
        0 => Some("t".to_string()),
        1 => Some("u".to_string()),
        _ => None,
    };
    Expr::Column { table, name: IDENTS[rng.index(IDENTS.len())].to_string() }
}

/// A random expression of recursion depth at most `depth`, covering every
/// `Expr` variant the parser can print.
fn expr(rng: &mut Rng, depth: usize) -> Expr {
    if depth == 0 {
        return if rng.flag() { literal(rng) } else { column(rng) };
    }
    let d = depth - 1;
    match rng.index(10) {
        0 => literal(rng),
        1 => column(rng),
        2 => Expr::Binary {
            op: BIN_OPS[rng.index(BIN_OPS.len())],
            left: Box::new(expr(rng, d)),
            right: Box::new(expr(rng, d)),
        },
        3 => Expr::Neg(Box::new(expr(rng, d))),
        4 => Expr::Not(Box::new(expr(rng, d))),
        5 => {
            if rng.flag() {
                Expr::Aggregate { func: AggFunc::Count, arg: None }
            } else {
                Expr::Aggregate { func: AggFunc::Max, arg: Some(Box::new(expr(rng, d))) }
            }
        }
        6 => {
            if rng.flag() {
                Expr::Scalar { func: ScalarFunc::Abs, args: vec![expr(rng, d)] }
            } else {
                Expr::Scalar { func: ScalarFunc::Round, args: vec![expr(rng, d), expr(rng, d)] }
            }
        }
        7 => Expr::InList {
            expr: Box::new(expr(rng, d)),
            list: (0..1 + rng.index(3)).map(|_| expr(rng, d)).collect(),
            negated: rng.flag(),
        },
        8 => Expr::Between {
            expr: Box::new(expr(rng, d)),
            low: Box::new(expr(rng, d)),
            high: Box::new(expr(rng, d)),
            negated: rng.flag(),
        },
        _ => Expr::Like {
            expr: Box::new(expr(rng, d)),
            pattern: Box::new(Expr::Literal(Value::Str(rng.string(LIKE_ALPHABET, 6)))),
            negated: rng.flag(),
        },
    }
}

fn select_stmt(rng: &mut Rng) -> SelectStmt {
    let projection = (0..1 + rng.index(3))
        .map(|_| SelectItem::Expr { expr: expr(rng, 3), alias: None })
        .collect();
    let skyline = rng.flag().then(|| SkylineClause {
        items: (0..1 + rng.index(2))
            .map(|_| (expr(rng, 2), if rng.flag() { SkyDir::Max } else { SkyDir::Min }))
            .collect(),
        gamma: rng.flag().then(|| (500 + rng.index(501)) as f64 / 1000.0),
    });
    SelectStmt {
        distinct: rng.flag(),
        projection,
        from: vec![
            TableRef { name: "t".into(), alias: None },
            TableRef { name: "u2".into(), alias: Some("u".into()) },
        ],
        where_clause: rng.flag().then(|| expr(rng, 3)),
        group_by: (0..rng.index(3)).map(|_| expr(rng, 2)).collect(),
        having: rng.flag().then(|| expr(rng, 2)),
        skyline,
        order_by: (0..rng.index(3))
            .map(|_| (expr(rng, 2), if rng.flag() { SortDir::Asc } else { SortDir::Desc }))
            .collect(),
        limit: rng.flag().then(|| rng.index(100)),
    }
}

/// print → parse is the identity on expression ASTs.
#[test]
fn expr_round_trips() {
    for seed in 0..256u64 {
        let mut rng = Rng::new(seed);
        let e = expr(&mut rng, 4);
        let sql = format!("SELECT {e} FROM t");
        let parsed =
            parse(&sql).unwrap_or_else(|err| panic!("seed={seed} unparseable {sql:?}: {err}"));
        let Statement::Select(s) = parsed else { panic!("seed={seed}") };
        let SelectItem::Expr { expr: got, .. } = &s.projection[0] else { panic!("seed={seed}") };
        assert_eq!(got, &e, "seed={seed}: {sql}");
    }
}

/// print → parse is the identity on whole SELECT statements.
#[test]
fn select_round_trips() {
    for seed in 0..128u64 {
        let mut rng = Rng::new(0x005e_1ec7 ^ seed.wrapping_mul(0x0100_0000_01b3));
        let s = select_stmt(&mut rng);
        let sql = s.to_string();
        let parsed =
            parse(&sql).unwrap_or_else(|err| panic!("seed={seed} unparseable {sql:?}: {err}"));
        assert_eq!(parsed, Statement::Select(s), "seed={seed}: {sql}");
    }
}

/// Arbitrary generated queries either run or fail with a clean error —
/// never a panic — and running the same query twice is deterministic.
#[test]
fn execution_never_panics() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (c0 INT, c1 FLOAT, c2 TEXT)").unwrap();
    db.execute("CREATE TABLE u2 (zz FLOAT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 2.5, 'abc'), (NULL, 0.0, ''), (7, -1.0, 'z%')").unwrap();
    db.execute("INSERT INTO u2 VALUES (0.5), (NULL)").unwrap();
    for seed in 0..128u64 {
        let mut rng = Rng::new(0x5eed_c0de_u64 ^ seed);
        let s = select_stmt(&mut rng);
        let sql = s.to_string();
        let a = db.execute(&sql);
        let b = db.execute(&sql);
        match (a, b) {
            // Compare via Debug so NaN results (legal: e.g. inf - inf in a
            // projection) count as equal across the two runs.
            (Ok(x), Ok(y)) => {
                assert_eq!(format!("{x:?}"), format!("{y:?}"), "nondeterministic: {sql}")
            }
            (Err(_), Err(_)) => {}
            (x, y) => panic!("flaky outcome for {sql}: {x:?} vs {y:?}"),
        }
    }
}
