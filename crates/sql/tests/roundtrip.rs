//! Property-based round-trip testing of the SQL printer and parser:
//! `parse(print(ast)) == ast` for randomly generated ASTs, and evaluation
//! never panics on arbitrary generated queries over a fixed table.

use aggsky_sql::ast::*;
use aggsky_sql::{parse, Database, Statement, Value};
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("c0".to_string()),
        Just("c1".to_string()),
        Just("c2".to_string()),
        Just("zz".to_string()),
    ]
}

fn literal() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0i64..1000).prop_map(|i| Expr::Literal(Value::Int(i))),
        (0u32..10_000).prop_map(|m| Expr::Literal(Value::Float(m as f64 / 8.0))),
        "[a-z '%_]{0,8}".prop_map(|s| Expr::Literal(Value::Str(s))),
        Just(Expr::Literal(Value::Null)),
    ]
}

fn column() -> impl Strategy<Value = Expr> {
    (proptest::option::of(prop_oneof![Just("t".to_string()), Just("u".to_string())]), ident())
        .prop_map(|(table, name)| Expr::Column { table, name })
}

fn expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![literal(), column()];
    leaf.prop_recursive(4, 48, 4, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinOp::Or),
                    Just(BinOp::And),
                    Just(BinOp::Eq),
                    Just(BinOp::Neq),
                    Just(BinOp::Lt),
                    Just(BinOp::Le),
                    Just(BinOp::Gt),
                    Just(BinOp::Ge),
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| Expr::Binary {
                    op,
                    left: Box::new(l),
                    right: Box::new(r)
                }),
            inner.clone().prop_map(|e| Expr::Neg(Box::new(e))),
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), proptest::option::of(inner.clone())).prop_map(|(a, arg)| {
                match arg {
                    None => Expr::Aggregate { func: AggFunc::Count, arg: None },
                    Some(_) => Expr::Aggregate { func: AggFunc::Max, arg: Some(Box::new(a)) },
                }
            }),
            inner.clone().prop_map(|e| Expr::Scalar { func: ScalarFunc::Abs, args: vec![e] }),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Scalar { func: ScalarFunc::Round, args: vec![a, b] }),
            (inner.clone(), proptest::collection::vec(inner.clone(), 1..4), any::<bool>())
                .prop_map(|(e, list, negated)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated
                }),
            (inner.clone(), inner.clone(), inner.clone(), any::<bool>()).prop_map(
                |(e, lo, hi, negated)| Expr::Between {
                    expr: Box::new(e),
                    low: Box::new(lo),
                    high: Box::new(hi),
                    negated
                }
            ),
            (inner.clone(), "[a-z%_]{0,6}", any::<bool>()).prop_map(|(e, pat, negated)| {
                Expr::Like {
                    expr: Box::new(e),
                    pattern: Box::new(Expr::Literal(Value::Str(pat))),
                    negated,
                }
            }),
        ]
    })
}

fn select_stmt() -> impl Strategy<Value = SelectStmt> {
    (
        any::<bool>(),
        proptest::collection::vec(expr(), 1..4),
        proptest::option::of(expr()),
        proptest::collection::vec(expr(), 0..3),
        proptest::option::of(expr()),
        proptest::option::of((
            proptest::collection::vec(
                (expr(), prop_oneof![Just(SkyDir::Max), Just(SkyDir::Min)]),
                1..3,
            ),
            proptest::option::of(500u32..=1000),
        )),
        proptest::collection::vec(
            (expr(), prop_oneof![Just(SortDir::Asc), Just(SortDir::Desc)]),
            0..3,
        ),
        proptest::option::of(0usize..100),
    )
        .prop_map(
            |(distinct, proj, where_clause, group_by, having, skyline, order_by, limit)| {
                SelectStmt {
                    distinct,
                    projection: proj
                        .into_iter()
                        .map(|expr| SelectItem::Expr { expr, alias: None })
                        .collect(),
                    from: vec![
                        TableRef { name: "t".into(), alias: None },
                        TableRef { name: "u2".into(), alias: Some("u".into()) },
                    ],
                    where_clause,
                    group_by,
                    having,
                    skyline: skyline.map(|(items, gamma)| SkylineClause {
                        items,
                        gamma: gamma.map(|g| g as f64 / 1000.0),
                    }),
                    order_by,
                    limit,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// print → parse is the identity on expression ASTs.
    #[test]
    fn expr_round_trips(e in expr()) {
        let sql = format!("SELECT {e} FROM t");
        let parsed = parse(&sql).unwrap_or_else(|err| panic!("unparseable {sql:?}: {err}"));
        let Statement::Select(s) = parsed else { panic!() };
        let SelectItem::Expr { expr: got, .. } = &s.projection[0] else { panic!() };
        prop_assert_eq!(got, &e, "{}", sql);
    }

    /// print → parse is the identity on whole SELECT statements.
    #[test]
    fn select_round_trips(s in select_stmt()) {
        let sql = s.to_string();
        let parsed = parse(&sql).unwrap_or_else(|err| panic!("unparseable {sql:?}: {err}"));
        prop_assert_eq!(parsed, Statement::Select(s), "{}", sql);
    }

    /// Arbitrary generated queries either run or fail with a clean error —
    /// never a panic — and running the same query twice is deterministic.
    #[test]
    fn execution_never_panics(s in select_stmt()) {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (c0 INT, c1 FLOAT, c2 TEXT)").unwrap();
        db.execute("CREATE TABLE u2 (zz FLOAT)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 2.5, 'abc'), (NULL, 0.0, ''), (7, -1.0, 'z%')")
            .unwrap();
        db.execute("INSERT INTO u2 VALUES (0.5), (NULL)").unwrap();
        let sql = s.to_string();
        let a = db.execute(&sql);
        let b = db.execute(&sql);
        match (a, b) {
            // Compare via Debug so NaN results (legal: e.g. inf - inf in a
            // projection) count as equal across the two runs.
            (Ok(x), Ok(y)) => {
                prop_assert_eq!(format!("{x:?}"), format!("{y:?}"), "nondeterministic: {}", sql)
            }
            (Err(_), Err(_)) => {}
            (x, y) => prop_assert!(false, "flaky outcome for {}: {:?} vs {:?}", sql, x, y),
        }
    }
}
