//! `SET TIMEOUT` error paths and graceful degradation: a timed-out
//! aggregate-skyline query must return its confirmed rows with an
//! interruption marker — never a panic, never wrong rows.

use aggsky_sql::{parse, Database, SqlError, Statement};

fn movie_db() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE movie (title TEXT, director TEXT, pop FLOAT, qual FLOAT)").unwrap();
    db.execute(
        "INSERT INTO movie VALUES \
         ('Avatar', 'Cameron', 404, 8.0), \
         ('Batman Begins', 'Nolan', 371, 8.3), \
         ('Kill Bill', 'Tarantino', 313, 8.2), \
         ('Pulp Fiction', 'Tarantino', 557, 9.0), \
         ('Star Wars (V)', 'Kershner', 362, 8.8), \
         ('Terminator (II)', 'Cameron', 326, 8.6), \
         ('The Godfather', 'Coppola', 531, 9.2), \
         ('The Lord of the Rings', 'Jackson', 518, 8.7), \
         ('The Room', 'Wiseau', 10, 3.2), \
         ('Dracula', 'Coppola', 76, 7.3)",
    )
    .unwrap();
    db
}

const SKYLINE_QUERY: &str =
    "SELECT director FROM movie GROUP BY director SKYLINE OF pop MAX, qual MAX";

fn directors(db: &mut Database, sql: &str) -> Vec<String> {
    let mut names: Vec<String> =
        db.execute(sql).unwrap().rows.iter().map(|r| r[0].to_string()).collect();
    names.sort();
    names
}

#[test]
fn set_timeout_parses() {
    assert_eq!(parse("SET TIMEOUT 123").unwrap(), Statement::SetTimeout(123));
    assert_eq!(parse("set timeout 0;").unwrap(), Statement::SetTimeout(0));
}

#[test]
fn set_timeout_rejects_bad_input() {
    assert!(matches!(parse("SET TIMEOUT -1"), Err(SqlError::Parse(_))));
    assert!(matches!(parse("SET TIMEOUT soon"), Err(SqlError::Parse(_))));
    assert!(matches!(parse("SET TIMEOUT"), Err(SqlError::Parse(_))));
    assert!(matches!(parse("SET LIFETIME 5"), Err(SqlError::Parse(_))));
}

#[test]
fn set_timeout_statement_reports_the_new_budget() {
    let mut db = Database::new();
    let r = db.execute("SET TIMEOUT 500").unwrap();
    assert_eq!(r.columns, vec!["timeout_ticks"]);
    assert_eq!(r.rows[0][0].to_string(), "500");
    assert_eq!(db.timeout_ticks(), 500);
}

#[test]
fn timeout_zero_means_unlimited() {
    let mut db = movie_db();
    let full = directors(&mut db, SKYLINE_QUERY);
    db.execute("SET TIMEOUT 0").unwrap();
    let r = db.execute(SKYLINE_QUERY).unwrap();
    assert!(r.interrupted.is_none(), "zero timeout must not interrupt");
    let mut names: Vec<String> = r.rows.iter().map(|r| r[0].to_string()).collect();
    names.sort();
    assert_eq!(names, full);
}

#[test]
fn timed_out_query_degrades_to_confirmed_rows() {
    let mut db = movie_db();
    let full = directors(&mut db, SKYLINE_QUERY);
    db.execute("SET TIMEOUT 1").unwrap();
    let r = db.execute(SKYLINE_QUERY).expect("timeout must degrade, not fail");
    let info = r.interrupted.expect("one tick cannot finish the skyline");
    assert!(info.undecided_groups > 0);
    for row in &r.rows {
        assert!(
            full.contains(&row[0].to_string()),
            "confirmed row {:?} is not in the exact skyline",
            row[0]
        );
    }
    // The marker is visible to consumers rendering the result.
    assert!(r.to_table().contains("interrupted"), "{}", r.to_table());
}

#[test]
fn generous_timeout_completes_exactly() {
    let mut db = movie_db();
    let full = directors(&mut db, SKYLINE_QUERY);
    db.execute("SET TIMEOUT 1000000").unwrap();
    let r = db.execute(SKYLINE_QUERY).unwrap();
    assert!(r.interrupted.is_none());
    let mut names: Vec<String> = r.rows.iter().map(|r| r[0].to_string()).collect();
    names.sort();
    assert_eq!(names, full);
}

#[test]
fn timeout_does_not_affect_non_skyline_queries() {
    let mut db = movie_db();
    db.execute("SET TIMEOUT 1").unwrap();
    let r = db.execute("SELECT title FROM movie").unwrap();
    assert_eq!(r.rows.len(), 10);
    assert!(r.interrupted.is_none());
    let r = db.execute("SELECT director, count(*) FROM movie GROUP BY director").unwrap();
    assert_eq!(r.rows.len(), 7);
    assert!(r.interrupted.is_none());
}

#[test]
fn set_timeout_roundtrips_through_display() {
    let ast = parse("SET TIMEOUT 42").unwrap();
    assert_eq!(ast.to_string(), "SET TIMEOUT 42");
    assert_eq!(parse(&ast.to_string()).unwrap(), ast);
}
