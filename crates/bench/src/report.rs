//! Markdown table rendering for harness output.

/// An incrementally-built, aligned markdown table.
#[derive(Debug, Clone)]
pub struct MarkdownTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl MarkdownTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> MarkdownTable {
        MarkdownTable { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends one row; must match the header count.
    pub fn push_row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(&widths) {
                line.push_str(&format!(" {c:>w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&render_row(&self.headers));
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a millisecond measurement compactly.
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 100.0 {
        format!("{ms:.0}")
    } else if ms >= 1.0 {
        format!("{ms:.1}")
    } else {
        format!("{ms:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = MarkdownTable::new(vec!["algo", "ms"]);
        t.push_row(vec!["NL", "12.5"]);
        t.push_row(vec!["IN", "1.0"]);
        let s = t.render();
        assert!(s.starts_with("| algo |"));
        assert_eq!(s.lines().count(), 4);
        assert!(s.contains("|   NL | 12.5 |"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = MarkdownTable::new(vec!["a"]);
        t.push_row(vec!["1", "2"]);
    }

    #[test]
    fn ms_formatting() {
        assert_eq!(fmt_ms(1234.6), "1235");
        assert_eq!(fmt_ms(12.34), "12.3");
        assert_eq!(fmt_ms(0.1234), "0.123");
    }
}
