//! Terminal line charts for the figure harnesses.
//!
//! The paper's figures are log-scale runtime plots; this renderer produces
//! a comparable view directly in the terminal, one marker character per
//! series, with optional log-scaled axes.

/// One plotted series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend name.
    pub name: String,
    /// `(x, y)` points; y must be positive when log-scaling.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Series {
        Series { name: name.into(), points }
    }
}

const MARKERS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];

/// Renders series into a `width`×`height` character grid with axes and a
/// legend. With `log_y`, the y axis is log₁₀-scaled (all y must be > 0).
pub fn render(title: &str, series: &[Series], width: usize, height: usize, log_y: bool) -> String {
    assert!(width >= 16 && height >= 4, "plot area too small");
    let pts: Vec<(f64, f64)> = series.iter().flat_map(|s| s.points.iter().copied()).collect();
    if pts.is_empty() {
        return format!("{title}\n(no data)\n");
    }
    let xform_y = |y: f64| -> f64 {
        if log_y {
            assert!(y > 0.0, "log scale requires positive values, got {y}");
            y.log10()
        } else {
            y
        }
    };
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &pts {
        let y = xform_y(y);
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if x_max == x_min {
        x_max += 1.0;
    }
    if y_max == y_min {
        y_max += 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let marker = MARKERS[si % MARKERS.len()];
        for &(x, y) in &s.points {
            let cx = ((x - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize;
            let cy =
                ((xform_y(y) - y_min) / (y_max - y_min) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy;
            // Later series overwrite earlier ones at collisions; the legend
            // disambiguates overall trends.
            grid[row][cx] = marker;
        }
    }
    let fmt_y = |frac: f64| -> String {
        let v = y_min + (y_max - y_min) * frac;
        let v = if log_y { 10f64.powf(v) } else { v };
        if v.abs() >= 1000.0 {
            format!("{v:.0}")
        } else {
            format!("{v:.3}")
        }
    };
    let label_w = 9;
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (r, row) in grid.iter().enumerate() {
        let frac = 1.0 - r as f64 / (height - 1) as f64;
        let label = if r == 0 || r == height - 1 || r == height / 2 {
            format!("{:>label_w$}", fmt_y(frac))
        } else {
            " ".repeat(label_w)
        };
        out.push_str(&label);
        out.push_str(" |");
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(label_w));
    out.push_str(" +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "{} {:<12} {:>w$}\n",
        " ".repeat(label_w),
        trim_num(x_min),
        trim_num(x_max),
        w = width.saturating_sub(12)
    ));
    out.push_str("  legend: ");
    for (si, s) in series.iter().enumerate() {
        if si > 0 {
            out.push_str(", ");
        }
        out.push(MARKERS[si % MARKERS.len()]);
        out.push('=');
        out.push_str(&s.name);
    }
    out.push('\n');
    out
}

fn trim_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e12 {
        format!("{}", v as i64)
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_axes_markers_and_legend() {
        let s = vec![
            Series::new("NL", vec![(1.0, 10.0), (2.0, 40.0), (3.0, 90.0)]),
            Series::new("IN", vec![(1.0, 2.0), (2.0, 5.0), (3.0, 9.0)]),
        ];
        let plot = render("runtime", &s, 40, 10, true);
        assert!(plot.starts_with("runtime\n"));
        assert!(plot.contains('*') && plot.contains('o'));
        assert!(plot.contains("legend: *=NL, o=IN"));
        // Eleven grid rows (10 + x axis) plus title, x labels, legend.
        assert_eq!(plot.lines().count(), 14);
    }

    #[test]
    fn log_scale_orders_extremes_correctly() {
        let s = vec![Series::new("a", vec![(0.0, 1.0), (1.0, 1000.0)])];
        let plot = render("t", &s, 30, 8, true);
        // Top label is the max (1000), bottom label the min (1).
        let lines: Vec<&str> = plot.lines().collect();
        assert!(lines[1].trim_start().starts_with("1000"), "{plot}");
        assert!(lines[8].trim_start().starts_with("1.000"), "{plot}");
    }

    #[test]
    fn flat_series_and_single_point_do_not_panic() {
        let s = vec![Series::new("flat", vec![(1.0, 5.0), (2.0, 5.0)])];
        let plot = render("t", &s, 20, 5, false);
        assert!(plot.contains('*'));
        let s = vec![Series::new("one", vec![(1.0, 5.0)])];
        let plot = render("t", &s, 20, 5, true);
        assert!(plot.contains('*'));
    }

    #[test]
    fn empty_series_render_placeholder() {
        let plot = render("t", &[], 20, 5, false);
        assert!(plot.contains("no data"));
    }

    #[test]
    #[should_panic(expected = "positive values")]
    fn log_scale_rejects_nonpositive() {
        let s = vec![Series::new("bad", vec![(0.0, 0.0)])];
        let _ = render("t", &s, 20, 5, true);
    }
}
