//! Timed algorithm runs with sanity cross-checks.

use aggsky_core::{Algorithm, Gamma, GroupedDataset, SkylineResult};
use std::time::Instant;

/// One timed run of one algorithm.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Which algorithm ran.
    pub algorithm: Algorithm,
    /// Wall-clock time in milliseconds.
    pub millis: f64,
    /// The computed skyline and work counters.
    pub result: SkylineResult,
}

impl Measurement {
    /// Size of the computed skyline.
    pub fn skyline_len(&self) -> usize {
        self.result.skyline.len()
    }
}

/// Times a single algorithm in its canonical paper configuration.
pub fn measure(algorithm: Algorithm, ds: &GroupedDataset, gamma: Gamma) -> Measurement {
    let start = Instant::now();
    let result = algorithm.run(ds, gamma);
    let millis = start.elapsed().as_secs_f64() * 1e3;
    Measurement { algorithm, millis, result }
}

/// Times all five evaluated algorithms (NL, TR, SI, IN, LO) on one dataset.
///
/// NL is exact; the transitive family runs the paper's printed pruning,
/// which can in corner cases keep an extra group (see the core crate docs
/// on paper vs. exact pruning). Disagreements are reported on stderr rather
/// than aborting the sweep, so a benchmark run also doubles as a survey of
/// how often the printed pruning deviates in practice.
pub fn measure_all(ds: &GroupedDataset, gamma: Gamma) -> Vec<Measurement> {
    let out: Vec<Measurement> =
        Algorithm::EVALUATED.iter().map(|&a| measure(a, ds, gamma)).collect();
    let first = &out[0];
    for m in &out[1..] {
        if m.result.skyline != first.result.skyline {
            eprintln!(
                "note: {} returned {} groups where {} returned {} (paper-pruning deviation)",
                m.algorithm.short_name(),
                m.result.skyline.len(),
                first.algorithm.short_name(),
                first.result.skyline.len()
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggsky_datagen::{Distribution, SyntheticConfig};

    #[test]
    fn all_algorithms_agree_on_a_small_workload() {
        let ds = SyntheticConfig {
            n_records: 600,
            n_groups: 12,
            dim: 3,
            ..SyntheticConfig::paper_default(Distribution::AntiCorrelated)
        }
        .generate();
        let ms = measure_all(&ds, Gamma::DEFAULT);
        assert_eq!(ms.len(), 5);
        assert!(ms.iter().all(|m| m.millis >= 0.0));
        let naive = aggsky_core::naive_skyline(&ds, Gamma::DEFAULT);
        assert_eq!(ms[0].result.skyline, naive.skyline);
    }
}
