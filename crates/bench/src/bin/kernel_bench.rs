//! Benchmark of the blocked counting kernel, the work-stealing parallel
//! scheduler, and the columnar straddle hot path with the cross-γ pair
//! cache — the performance layers that sit below every algorithm.
//!
//! Three experiments:
//!
//! 1. **Kernel** — NL over a 1000-group independent workload with the
//!    exhaustive record-loop kernel vs. the blocked kernel (sorted groups,
//!    block corners, O(1) full/skip classification). The figure of merit is
//!    hardware-independent: record pairs actually tested.
//! 2. **Scheduler** — the parallel extension with the static strided
//!    partition vs. the atomic-counter chunk scheduler, on a Zipf-sized
//!    workload where a few giant groups strand strided workers. Each
//!    group's scan cost is measured sequentially, then the makespan of both
//!    schedulers at 4 workers is computed from those measured costs (this
//!    is the wall clock each policy produces on a 4-core machine; measured
//!    end-to-end times are also reported, but on a machine with fewer
//!    hardware threads than workers they degenerate to the serialized sum
//!    and cannot separate the schedulers).
//! 3. **Hot path** — ns per tested record pair of the row-wise straddle
//!    loop vs. the columnar bitmask kernel on a straddle-heavy
//!    anticorrelated workload (identical `Stats`, asserted), plus a 5-point
//!    γ sweep through the shared [`aggsky_core::PairCache`] reporting
//!    hit/miss/resume counts and the sweep's wall clock against independent
//!    uncached runs. Written to `BENCH_hotpath.json`.
//!
//! Prints markdown tables and writes the raw numbers to
//! `BENCH_kernel.json` / `BENCH_hotpath.json` in the current directory
//! (hand-rendered JSON; the workspace has no serde). One extra instrumented
//! scheduler run exports a Chrome trace (`BENCH_kernel_trace.json`,
//! loadable in Perfetto) and a per-phase span summary
//! (`BENCH_kernel_spans.txt`) next to it.
//!
//! Usage: `kernel_bench [records] [repeats] [--hotpath-only] [--gate]`
//! (defaults 30000, 3). `--hotpath-only` runs just experiment 3; `--gate`
//! additionally enforces the hot-path regression gates (columnar speedup,
//! sweep cache hit rate) and exits nonzero when one fails, so CI can run
//! `kernel_bench --hotpath-only --gate` directly.

use aggsky_bench::report::fmt_ms;
use aggsky_bench::MarkdownTable;
use aggsky_core::obs::{export_chrome, render_summary, TraceRecorder};
use aggsky_core::paircount::{compare_groups, PairOptions};
use aggsky_core::{
    compare_groups_blocked, compare_groups_columnar, gamma_sweep_ctx, parallel_skyline_ctx,
    parallel_skyline_strided, parallel_skyline_with, AlgoOptions, Algorithm, Gamma, GroupedDataset,
    KernelConfig, Mbb, PreparedDataset, RunContext, SkylineResult, Stats, MAX_LANE_BLOCK,
};
use aggsky_datagen::{Distribution, GroupSizes, SyntheticConfig};
use aggsky_spatial::{Aabb, RTree};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Best-of-`repeats` wall time in ms, plus the (identical) last result.
fn time<F: Fn() -> SkylineResult>(repeats: usize, f: F) -> (f64, SkylineResult) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        result = Some(r);
    }
    (best, result.unwrap())
}

/// Best-of-`repeats` sequential wall time in ms of each group's dominator
/// scan — the unit of work both schedulers distribute (mirrors the worker
/// loop in `parallel_skyline`).
fn per_group_costs(ds: &GroupedDataset, gamma: Gamma, repeats: usize) -> Vec<f64> {
    let boxes = Mbb::of_all_groups(ds);
    let tree = RTree::bulk_load(
        ds.dim(),
        boxes.iter().enumerate().map(|(g, b)| (Aabb::point(&b.max), g)).collect(),
    );
    let opts = PairOptions { stop_rule: true, need_bar: false, corrected_bar: false };
    let mut costs = vec![f64::INFINITY; ds.n_groups()];
    let mut candidates = Vec::new();
    for _ in 0..repeats.max(1) {
        for g1 in ds.group_ids() {
            let start = Instant::now();
            tree.window_query_into(&Aabb::at_least(&boxes[g1].min), &mut candidates);
            let mut stats = Stats::default();
            for &g2 in candidates.iter() {
                if g2 == g1 {
                    continue;
                }
                let v = compare_groups(
                    ds,
                    g2,
                    g1,
                    gamma,
                    Some((&boxes[g2], &boxes[g1])),
                    opts,
                    &mut stats,
                );
                if v.forward.dominates() {
                    break;
                }
            }
            costs[g1] = costs[g1].min(start.elapsed().as_secs_f64() * 1e3);
        }
    }
    costs
}

/// Wall clock of the static strided partition: worker `t` processes groups
/// `t, t+T, …` back to back, so the makespan is the slowest worker's sum.
fn strided_makespan(costs: &[f64], threads: usize) -> f64 {
    (0..threads).map(|t| costs.iter().skip(t).step_by(threads).sum()).fold(0.0f64, f64::max)
}

/// Wall clock of the atomic-counter chunk scheduler: workers grab the next
/// chunk whenever they finish one, i.e. greedy list scheduling over chunks.
fn work_stealing_makespan(costs: &[f64], threads: usize) -> f64 {
    let chunk = (costs.len() / (threads * 8)).max(1);
    let mut workers = vec![0.0f64; threads];
    for c in costs.chunks(chunk) {
        let next: f64 = c.iter().sum();
        let idlest =
            workers.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).unwrap();
        workers[idlest] += next;
    }
    workers.iter().fold(0.0f64, |a, &b| a.max(b))
}

/// Gate: the columnar straddle kernel must beat the row-wise loop by at
/// least this factor on the straddle-heavy workload. The measured ratio
/// sits well above 2 on commodity hardware; 1.5 absorbs noisy CI machines
/// while still catching a de-vectorized kernel.
const MIN_COLUMNAR_SPEEDUP: f64 = 1.5;

/// Gate: fraction of cache lookups served outright (no fresh counting)
/// across the 5-point γ sweep. Four of five runs repeat the first run's
/// pairs, so the structural ceiling is 0.8; 0.5 catches a cache that stops
/// memoizing or a sweep that stops sharing it.
const MIN_SWEEP_HIT_RATE: f64 = 0.5;

/// Experiment 3: the columnar straddle hot path and the cross-γ cache.
/// Returns `(speedup, hit_rate)` for the gates.
fn hotpath(records: usize, repeats: usize) -> (f64, f64) {
    // Straddle-heavy workload: anticorrelated classes spread over most of
    // the data space, so block corners rarely classify a pair as full/skip
    // and nearly all counting lands in the straddle loop under test.
    let ds = SyntheticConfig {
        n_records: records,
        n_groups: (records / 500).max(8),
        dim: 4,
        spread: 0.6,
        ..SyntheticConfig::paper_default(Distribution::AntiCorrelated)
    }
    .generate();
    let prep = PreparedDataset::build(&ds, MAX_LANE_BLOCK).expect("lane-sized blocks are valid");
    assert!(prep.lanes_enabled(), "MAX_LANE_BLOCK blocks must carry key lanes");
    // No stopping rule: both loops must count every straddling pair, which
    // makes the per-pair cost comparable and the Stats assert exact.
    let opts = PairOptions { stop_rule: false, need_bar: false, corrected_bar: false };

    let run = |columnar: bool| -> (f64, Stats) {
        let mut best = f64::INFINITY;
        let mut out = Stats::default();
        for _ in 0..repeats.max(1) {
            let mut stats = Stats::default();
            let start = Instant::now();
            for g1 in ds.group_ids() {
                for g2 in (g1 + 1)..ds.n_groups() {
                    let v = if columnar {
                        compare_groups_columnar(
                            &prep,
                            g1,
                            g2,
                            Gamma::DEFAULT,
                            None,
                            opts,
                            &mut stats,
                        )
                    } else {
                        compare_groups_blocked(
                            &prep,
                            g1,
                            g2,
                            Gamma::DEFAULT,
                            None,
                            opts,
                            &mut stats,
                        )
                    };
                    std::hint::black_box(v);
                }
            }
            best = best.min(start.elapsed().as_secs_f64() * 1e3);
            out = stats;
        }
        (best, out)
    };
    let (t_row, s_row) = run(false);
    let (t_col, s_col) = run(true);
    assert_eq!(s_row, s_col, "straddle kernels must charge identical stats");
    let tested = s_row.records_compared.max(1);
    let ns_row = t_row * 1e6 / tested as f64;
    let ns_col = t_col * 1e6 / tested as f64;
    let speedup = t_row / t_col;

    println!(
        "\n## Straddle hot path — row-wise vs columnar, anticorrelated, {} records / {} groups, d={}, block {}\n",
        ds.n_records(),
        ds.n_groups(),
        ds.dim(),
        MAX_LANE_BLOCK
    );
    let mut table = MarkdownTable::new(vec!["straddle loop", "ms", "ns / tested pair"]);
    table.push_row(vec!["row-wise".to_string(), fmt_ms(t_row), format!("{ns_row:.2}")]);
    table.push_row(vec!["columnar".to_string(), fmt_ms(t_col), format!("{ns_col:.2}")]);
    table.print();
    println!(
        "\n{tested} record pairs tested, identical stats, columnar speedup {speedup:.2}x \
         (gate {MIN_COLUMNAR_SPEEDUP}x)"
    );

    // ---- Cross-γ pair cache on a 5-point sweep ----
    let gammas: Vec<Gamma> =
        [0.5, 0.6, 0.75, 0.9, 0.99].iter().map(|&g| Gamma::new(g).expect("valid γ")).collect();
    let sweep_opts = AlgoOptions {
        kernel: KernelConfig::Columnar { block_size: MAX_LANE_BLOCK },
        ..AlgoOptions::exact(Gamma::DEFAULT)
    };
    let start = Instant::now();
    let outcome =
        gamma_sweep_ctx(&ds, Algorithm::NestedLoop, &gammas, sweep_opts, &RunContext::unlimited())
            .expect("valid block size");
    let t_sweep = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(outcome.runs.len(), gammas.len(), "unlimited sweep must finish");

    let start = Instant::now();
    for &gamma in &gammas {
        let solo = Algorithm::NestedLoop
            .run_with(&ds, AlgoOptions { gamma, ..sweep_opts })
            .expect("valid kernel config");
        let swept =
            &outcome.runs[gammas.iter().position(|g| *g == gamma).expect("swept γ")].outcome;
        assert_eq!(
            swept.clone().unwrap_or_partial().skyline,
            solo.skyline,
            "cached sweep must match the uncached run at γ={gamma}"
        );
    }
    let t_solo = start.elapsed().as_secs_f64() * 1e3;

    let (mut hits, mut misses, mut resumes) = (0u64, 0u64, 0u64);
    let mut per_run = String::new();
    for (i, r) in outcome.runs.iter().enumerate() {
        let s = r.outcome.stats();
        hits += s.cache_hits;
        misses += s.cache_misses;
        resumes += s.cache_resumes;
        if i > 0 {
            per_run.push_str(", ");
        }
        write!(
            per_run,
            "{{ \"gamma\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \"cache_resumes\": {}, \"record_pairs\": {} }}",
            r.gamma, s.cache_hits, s.cache_misses, s.cache_resumes, s.record_pairs
        )
        .unwrap();
    }
    let lookups = (hits + misses + resumes).max(1);
    let hit_rate = hits as f64 / lookups as f64;

    println!(
        "\n## Cross-γ pair cache — NL sweep over γ ∈ {{0.5, 0.6, 0.75, 0.9, 0.99}}\n\n\
         sweep {} ms vs {} ms independent ({:.2}x); {hits} hits / {misses} misses / {resumes} resumes \
         over {lookups} lookups → hit rate {hit_rate:.2} (gate {MIN_SWEEP_HIT_RATE}), \
         {} pairs memoized",
        fmt_ms(t_sweep),
        fmt_ms(t_solo),
        t_solo / t_sweep,
        outcome.memoized_pairs
    );

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"workload\": {{").unwrap();
    writeln!(json, "    \"records\": {},", ds.n_records()).unwrap();
    writeln!(json, "    \"groups\": {},", ds.n_groups()).unwrap();
    writeln!(json, "    \"dim\": {},", ds.dim()).unwrap();
    writeln!(json, "    \"distribution\": \"anticorrelated\",").unwrap();
    writeln!(json, "    \"block_size\": {MAX_LANE_BLOCK}").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"straddle_kernel\": {{").unwrap();
    writeln!(
        json,
        "    \"row_wise\": {{ \"millis\": {t_row:.3}, \"ns_per_tested_pair\": {ns_row:.3} }},"
    )
    .unwrap();
    writeln!(
        json,
        "    \"columnar\": {{ \"millis\": {t_col:.3}, \"ns_per_tested_pair\": {ns_col:.3} }},"
    )
    .unwrap();
    writeln!(json, "    \"record_pairs_tested\": {tested},").unwrap();
    writeln!(json, "    \"speedup\": {speedup:.3},").unwrap();
    writeln!(json, "    \"speedup_gate\": {MIN_COLUMNAR_SPEEDUP}").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"gamma_sweep\": {{").unwrap();
    writeln!(json, "    \"algorithm\": \"NL\",").unwrap();
    writeln!(json, "    \"gammas\": [0.5, 0.6, 0.75, 0.9, 0.99],").unwrap();
    writeln!(json, "    \"sweep_millis\": {t_sweep:.3},").unwrap();
    writeln!(json, "    \"independent_millis\": {t_solo:.3},").unwrap();
    writeln!(json, "    \"cache_hits\": {hits},").unwrap();
    writeln!(json, "    \"cache_misses\": {misses},").unwrap();
    writeln!(json, "    \"cache_resumes\": {resumes},").unwrap();
    writeln!(json, "    \"hit_rate\": {hit_rate:.4},").unwrap();
    writeln!(json, "    \"hit_rate_gate\": {MIN_SWEEP_HIT_RATE},").unwrap();
    writeln!(json, "    \"memoized_pairs\": {},", outcome.memoized_pairs).unwrap();
    writeln!(json, "    \"per_run\": [{per_run}]").unwrap();
    writeln!(json, "  }}").unwrap();
    writeln!(json, "}}").unwrap();
    std::fs::write("BENCH_hotpath.json", &json).expect("write BENCH_hotpath.json");
    println!("wrote BENCH_hotpath.json");

    (speedup, hit_rate)
}

fn gate_hotpath(speedup: f64, hit_rate: f64) {
    let mut failed = false;
    if speedup < MIN_COLUMNAR_SPEEDUP {
        eprintln!("FAIL: columnar straddle kernel is only {speedup:.2}x the row-wise loop (gate {MIN_COLUMNAR_SPEEDUP}x)");
        failed = true;
    }
    if hit_rate < MIN_SWEEP_HIT_RATE {
        eprintln!("FAIL: γ-sweep cache hit rate {hit_rate:.2} below gate {MIN_SWEEP_HIT_RATE}");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("hot-path gates hold");
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let gate = argv.iter().any(|a| a == "--gate");
    let hotpath_only = argv.iter().any(|a| a == "--hotpath-only");
    let mut pos = argv.iter().filter(|a| !a.starts_with("--"));
    let records: usize = pos.next().and_then(|s| s.parse().ok()).unwrap_or(30_000);
    let repeats: usize = pos.next().and_then(|s| s.parse().ok()).unwrap_or(3);
    let gamma = Gamma::DEFAULT;

    if hotpath_only {
        let (speedup, hit_rate) = hotpath(records, repeats);
        if gate {
            gate_hotpath(speedup, hit_rate);
        }
        return;
    }

    // ---- Experiment 1: counting kernel, 1k-group independent workload ----
    let kernel_ds = SyntheticConfig {
        n_records: records,
        n_groups: 1000,
        ..SyntheticConfig::paper_default(Distribution::Independent)
    }
    .generate();

    let exhaustive = AlgoOptions::paper(gamma);
    let blocked = AlgoOptions { kernel: KernelConfig::blocked(), ..exhaustive };
    let (t_ex, r_ex) = time(repeats, || {
        Algorithm::NestedLoop.run_with(&kernel_ds, exhaustive).expect("valid kernel config")
    });
    let (t_bl, r_bl) = time(repeats, || {
        Algorithm::NestedLoop.run_with(&kernel_ds, blocked).expect("valid kernel config")
    });
    assert_eq!(r_ex.skyline, r_bl.skyline, "kernels must agree");
    let ratio = r_ex.stats.record_pairs as f64 / r_bl.stats.record_pairs.max(1) as f64;

    println!(
        "## Counting kernel — NL, independent, {} records / {} groups, d={}\n",
        kernel_ds.n_records(),
        kernel_ds.n_groups(),
        kernel_ds.dim()
    );
    let mut table = MarkdownTable::new(vec![
        "kernel",
        "ms",
        "record pairs tested",
        "blocks full",
        "blocks skipped",
    ]);
    table.push_row(vec![
        "exhaustive".to_string(),
        fmt_ms(t_ex),
        r_ex.stats.record_pairs.to_string(),
        "-".to_string(),
        "-".to_string(),
    ]);
    table.push_row(vec![
        "blocked".to_string(),
        fmt_ms(t_bl),
        r_bl.stats.record_pairs.to_string(),
        r_bl.stats.blocks_full.to_string(),
        r_bl.stats.blocks_skipped.to_string(),
    ]);
    table.print();
    println!("\nrecord-comparison reduction: {ratio:.1}x\n");

    // ---- Experiment 2: parallel scheduler on a skewed workload ----
    let skew_ds = SyntheticConfig {
        n_records: records,
        n_groups: (records / 500).max(8),
        group_sizes: GroupSizes::Zipf(1.4),
        ..SyntheticConfig::paper_default(Distribution::AntiCorrelated)
    }
    .generate();
    let threads = 4usize;

    // Measure each group's scan cost sequentially (same per-group work the
    // parallel workers execute: window query + one-directional stop-rule
    // comparisons until a dominator is found).
    let group_costs = per_group_costs(&skew_ds, gamma, repeats);
    let total: f64 = group_costs.iter().sum();
    let strided_makespan = strided_makespan(&group_costs, threads);
    let stealing_makespan = work_stealing_makespan(&group_costs, threads);

    println!(
        "\n## Parallel scheduler — anticorrelated Zipf(1.4), {} records / {} groups, {threads} workers\n",
        skew_ds.n_records(),
        skew_ds.n_groups()
    );
    let mut table = MarkdownTable::new(vec!["scheduler", "makespan ms", "vs ideal"]);
    let ideal = total / threads as f64;
    table.push_row(vec![
        "strided (seed)".to_string(),
        fmt_ms(strided_makespan),
        format!("{:.2}x", strided_makespan / ideal),
    ]);
    table.push_row(vec![
        "work-stealing".to_string(),
        fmt_ms(stealing_makespan),
        format!("{:.2}x", stealing_makespan / ideal),
    ]);
    table.print();
    println!(
        "\nmakespans computed from measured per-group costs ({} ms total work, ideal {} ms)",
        fmt_ms(total),
        fmt_ms(ideal)
    );

    // End-to-end wall clocks of the two real implementations, for reference.
    let (t_str, r_str) = time(repeats, || {
        parallel_skyline_strided(&skew_ds, gamma, threads).expect("strided run failed")
    });
    let (t_chk, r_chk) = time(repeats, || {
        parallel_skyline_with(&skew_ds, gamma, threads, KernelConfig::Exhaustive)
            .expect("chunked run failed")
    });
    assert_eq!(r_str.skyline, r_chk.skyline, "schedulers must agree");
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "measured end-to-end on this machine ({cores} hardware threads): \
         strided {} ms, work-stealing {} ms",
        fmt_ms(t_str),
        fmt_ms(t_chk)
    );

    // One instrumented work-stealing run: per-worker spans, chunk-size
    // histograms and the counter totals, exported next to the raw numbers.
    let recorder = Arc::new(TraceRecorder::new());
    let traced_ctx = RunContext::unlimited().with_recorder(recorder.clone());
    let traced =
        parallel_skyline_ctx(&skew_ds, gamma, threads, KernelConfig::Exhaustive, &traced_ctx)
            .expect("traced run failed")
            .unwrap_or_partial();
    assert_eq!(traced.skyline, r_chk.skyline, "traced run must agree");
    let snapshot = recorder.snapshot();
    std::fs::write("BENCH_kernel_trace.json", export_chrome(&snapshot))
        .expect("write BENCH_kernel_trace.json");
    std::fs::write("BENCH_kernel_spans.txt", render_summary(&snapshot))
        .expect("write BENCH_kernel_spans.txt");
    println!(
        "wrote BENCH_kernel_trace.json (Chrome trace, load in Perfetto) and BENCH_kernel_spans.txt"
    );

    // ---- Raw numbers as JSON ----
    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"workload\": {{").unwrap();
    writeln!(json, "    \"records\": {},", kernel_ds.n_records()).unwrap();
    writeln!(json, "    \"groups\": {},", kernel_ds.n_groups()).unwrap();
    writeln!(json, "    \"dim\": {},", kernel_ds.dim()).unwrap();
    writeln!(json, "    \"distribution\": \"independent\"").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"kernel\": {{").unwrap();
    writeln!(
        json,
        "    \"exhaustive\": {{ \"millis\": {t_ex:.3}, \"record_pairs\": {} }},",
        r_ex.stats.record_pairs
    )
    .unwrap();
    writeln!(
        json,
        "    \"blocked\": {{ \"millis\": {t_bl:.3}, \"record_pairs\": {}, \"blocks_full\": {}, \"blocks_skipped\": {}, \"records_compared\": {} }},",
        r_bl.stats.record_pairs,
        r_bl.stats.blocks_full,
        r_bl.stats.blocks_skipped,
        r_bl.stats.records_compared
    )
    .unwrap();
    writeln!(json, "    \"record_comparison_ratio\": {ratio:.2}").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"scheduler\": {{").unwrap();
    writeln!(json, "    \"threads\": {threads},").unwrap();
    writeln!(json, "    \"groups\": {},", skew_ds.n_groups()).unwrap();
    writeln!(json, "    \"group_sizes\": \"zipf(1.4)\",").unwrap();
    writeln!(json, "    \"total_work_millis\": {total:.3},").unwrap();
    writeln!(json, "    \"strided_millis\": {strided_makespan:.3},").unwrap();
    writeln!(json, "    \"work_stealing_millis\": {stealing_makespan:.3},").unwrap();
    writeln!(json, "    \"speedup\": {:.3},", strided_makespan / stealing_makespan).unwrap();
    writeln!(
        json,
        "    \"makespan_basis\": \"computed from measured sequential per-group scan costs\","
    )
    .unwrap();
    writeln!(json, "    \"hardware_threads\": {cores},").unwrap();
    writeln!(
        json,
        "    \"measured_end_to_end\": {{ \"strided_millis\": {t_str:.3}, \"work_stealing_millis\": {t_chk:.3} }},"
    )
    .unwrap();
    writeln!(
        json,
        "    \"work_stealing_stats\": {{ \"worker_retries\": {}, \"workers_quarantined\": {}, \"blocks_full\": {}, \"blocks_skipped\": {} }}",
        r_chk.stats.worker_retries,
        r_chk.stats.workers_quarantined,
        r_chk.stats.blocks_full,
        r_chk.stats.blocks_skipped
    )
    .unwrap();
    writeln!(json, "  }}").unwrap();
    writeln!(json, "}}").unwrap();
    std::fs::write("BENCH_kernel.json", &json).expect("write BENCH_kernel.json");
    println!("\nwrote BENCH_kernel.json");

    // ---- Experiment 3: columnar hot path + cross-γ cache ----
    let (speedup, hit_rate) = hotpath(records, repeats);
    if gate {
        gate_hotpath(speedup, hit_rate);
    }
}
