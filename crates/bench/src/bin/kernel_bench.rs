//! Benchmark of the blocked counting kernel and the work-stealing parallel
//! scheduler, the two performance layers that sit below every algorithm.
//!
//! Two experiments:
//!
//! 1. **Kernel** — NL over a 1000-group independent workload with the
//!    exhaustive record-loop kernel vs. the blocked kernel (sorted groups,
//!    block corners, O(1) full/skip classification). The figure of merit is
//!    hardware-independent: record pairs actually tested.
//! 2. **Scheduler** — the parallel extension with the static strided
//!    partition vs. the atomic-counter chunk scheduler, on a Zipf-sized
//!    workload where a few giant groups strand strided workers. Each
//!    group's scan cost is measured sequentially, then the makespan of both
//!    schedulers at 4 workers is computed from those measured costs (this
//!    is the wall clock each policy produces on a 4-core machine; measured
//!    end-to-end times are also reported, but on a machine with fewer
//!    hardware threads than workers they degenerate to the serialized sum
//!    and cannot separate the schedulers).
//!
//! Prints markdown tables and writes the raw numbers to
//! `BENCH_kernel.json` in the current directory (hand-rendered JSON; the
//! workspace has no serde). One extra instrumented scheduler run exports a
//! Chrome trace (`BENCH_kernel_trace.json`, loadable in Perfetto) and a
//! per-phase span summary (`BENCH_kernel_spans.txt`) next to it.
//!
//! Usage: `kernel_bench [records] [repeats]` (defaults 30000, 3).

use aggsky_bench::report::fmt_ms;
use aggsky_bench::MarkdownTable;
use aggsky_core::obs::{export_chrome, render_summary, TraceRecorder};
use aggsky_core::paircount::{compare_groups, PairOptions};
use aggsky_core::{
    parallel_skyline_ctx, parallel_skyline_strided, parallel_skyline_with, AlgoOptions, Algorithm,
    Gamma, GroupedDataset, KernelConfig, Mbb, RunContext, SkylineResult, Stats,
};
use aggsky_datagen::{Distribution, GroupSizes, SyntheticConfig};
use aggsky_spatial::{Aabb, RTree};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Best-of-`repeats` wall time in ms, plus the (identical) last result.
fn time<F: Fn() -> SkylineResult>(repeats: usize, f: F) -> (f64, SkylineResult) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        result = Some(r);
    }
    (best, result.unwrap())
}

/// Best-of-`repeats` sequential wall time in ms of each group's dominator
/// scan — the unit of work both schedulers distribute (mirrors the worker
/// loop in `parallel_skyline`).
fn per_group_costs(ds: &GroupedDataset, gamma: Gamma, repeats: usize) -> Vec<f64> {
    let boxes = Mbb::of_all_groups(ds);
    let tree = RTree::bulk_load(
        ds.dim(),
        boxes.iter().enumerate().map(|(g, b)| (Aabb::point(&b.max), g)).collect(),
    );
    let opts = PairOptions { stop_rule: true, need_bar: false, corrected_bar: false };
    let mut costs = vec![f64::INFINITY; ds.n_groups()];
    let mut candidates = Vec::new();
    for _ in 0..repeats.max(1) {
        for g1 in ds.group_ids() {
            let start = Instant::now();
            tree.window_query_into(&Aabb::at_least(&boxes[g1].min), &mut candidates);
            let mut stats = Stats::default();
            for &g2 in candidates.iter() {
                if g2 == g1 {
                    continue;
                }
                let v = compare_groups(
                    ds,
                    g2,
                    g1,
                    gamma,
                    Some((&boxes[g2], &boxes[g1])),
                    opts,
                    &mut stats,
                );
                if v.forward.dominates() {
                    break;
                }
            }
            costs[g1] = costs[g1].min(start.elapsed().as_secs_f64() * 1e3);
        }
    }
    costs
}

/// Wall clock of the static strided partition: worker `t` processes groups
/// `t, t+T, …` back to back, so the makespan is the slowest worker's sum.
fn strided_makespan(costs: &[f64], threads: usize) -> f64 {
    (0..threads).map(|t| costs.iter().skip(t).step_by(threads).sum()).fold(0.0f64, f64::max)
}

/// Wall clock of the atomic-counter chunk scheduler: workers grab the next
/// chunk whenever they finish one, i.e. greedy list scheduling over chunks.
fn work_stealing_makespan(costs: &[f64], threads: usize) -> f64 {
    let chunk = (costs.len() / (threads * 8)).max(1);
    let mut workers = vec![0.0f64; threads];
    for c in costs.chunks(chunk) {
        let next: f64 = c.iter().sum();
        let idlest =
            workers.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).unwrap();
        workers[idlest] += next;
    }
    workers.iter().fold(0.0f64, |a, &b| a.max(b))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let records: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(30_000);
    let repeats: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);
    let gamma = Gamma::DEFAULT;

    // ---- Experiment 1: counting kernel, 1k-group independent workload ----
    let kernel_ds = SyntheticConfig {
        n_records: records,
        n_groups: 1000,
        ..SyntheticConfig::paper_default(Distribution::Independent)
    }
    .generate();

    let exhaustive = AlgoOptions::paper(gamma);
    let blocked = AlgoOptions { kernel: KernelConfig::blocked(), ..exhaustive };
    let (t_ex, r_ex) = time(repeats, || Algorithm::NestedLoop.run_with(&kernel_ds, exhaustive));
    let (t_bl, r_bl) = time(repeats, || Algorithm::NestedLoop.run_with(&kernel_ds, blocked));
    assert_eq!(r_ex.skyline, r_bl.skyline, "kernels must agree");
    let ratio = r_ex.stats.record_pairs as f64 / r_bl.stats.record_pairs.max(1) as f64;

    println!(
        "## Counting kernel — NL, independent, {} records / {} groups, d={}\n",
        kernel_ds.n_records(),
        kernel_ds.n_groups(),
        kernel_ds.dim()
    );
    let mut table = MarkdownTable::new(vec![
        "kernel",
        "ms",
        "record pairs tested",
        "blocks full",
        "blocks skipped",
    ]);
    table.push_row(vec![
        "exhaustive".to_string(),
        fmt_ms(t_ex),
        r_ex.stats.record_pairs.to_string(),
        "-".to_string(),
        "-".to_string(),
    ]);
    table.push_row(vec![
        "blocked".to_string(),
        fmt_ms(t_bl),
        r_bl.stats.record_pairs.to_string(),
        r_bl.stats.blocks_full.to_string(),
        r_bl.stats.blocks_skipped.to_string(),
    ]);
    table.print();
    println!("\nrecord-comparison reduction: {ratio:.1}x\n");

    // ---- Experiment 2: parallel scheduler on a skewed workload ----
    let skew_ds = SyntheticConfig {
        n_records: records,
        n_groups: (records / 500).max(8),
        group_sizes: GroupSizes::Zipf(1.4),
        ..SyntheticConfig::paper_default(Distribution::AntiCorrelated)
    }
    .generate();
    let threads = 4usize;

    // Measure each group's scan cost sequentially (same per-group work the
    // parallel workers execute: window query + one-directional stop-rule
    // comparisons until a dominator is found).
    let group_costs = per_group_costs(&skew_ds, gamma, repeats);
    let total: f64 = group_costs.iter().sum();
    let strided_makespan = strided_makespan(&group_costs, threads);
    let stealing_makespan = work_stealing_makespan(&group_costs, threads);

    println!(
        "\n## Parallel scheduler — anticorrelated Zipf(1.4), {} records / {} groups, {threads} workers\n",
        skew_ds.n_records(),
        skew_ds.n_groups()
    );
    let mut table = MarkdownTable::new(vec!["scheduler", "makespan ms", "vs ideal"]);
    let ideal = total / threads as f64;
    table.push_row(vec![
        "strided (seed)".to_string(),
        fmt_ms(strided_makespan),
        format!("{:.2}x", strided_makespan / ideal),
    ]);
    table.push_row(vec![
        "work-stealing".to_string(),
        fmt_ms(stealing_makespan),
        format!("{:.2}x", stealing_makespan / ideal),
    ]);
    table.print();
    println!(
        "\nmakespans computed from measured per-group costs ({} ms total work, ideal {} ms)",
        fmt_ms(total),
        fmt_ms(ideal)
    );

    // End-to-end wall clocks of the two real implementations, for reference.
    let (t_str, r_str) = time(repeats, || {
        parallel_skyline_strided(&skew_ds, gamma, threads).expect("strided run failed")
    });
    let (t_chk, r_chk) = time(repeats, || {
        parallel_skyline_with(&skew_ds, gamma, threads, KernelConfig::Exhaustive)
            .expect("chunked run failed")
    });
    assert_eq!(r_str.skyline, r_chk.skyline, "schedulers must agree");
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "measured end-to-end on this machine ({cores} hardware threads): \
         strided {} ms, work-stealing {} ms",
        fmt_ms(t_str),
        fmt_ms(t_chk)
    );

    // One instrumented work-stealing run: per-worker spans, chunk-size
    // histograms and the counter totals, exported next to the raw numbers.
    let recorder = Arc::new(TraceRecorder::new());
    let traced_ctx = RunContext::unlimited().with_recorder(recorder.clone());
    let traced =
        parallel_skyline_ctx(&skew_ds, gamma, threads, KernelConfig::Exhaustive, &traced_ctx)
            .expect("traced run failed")
            .unwrap_or_partial();
    assert_eq!(traced.skyline, r_chk.skyline, "traced run must agree");
    let snapshot = recorder.snapshot();
    std::fs::write("BENCH_kernel_trace.json", export_chrome(&snapshot))
        .expect("write BENCH_kernel_trace.json");
    std::fs::write("BENCH_kernel_spans.txt", render_summary(&snapshot))
        .expect("write BENCH_kernel_spans.txt");
    println!(
        "wrote BENCH_kernel_trace.json (Chrome trace, load in Perfetto) and BENCH_kernel_spans.txt"
    );

    // ---- Raw numbers as JSON ----
    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"workload\": {{").unwrap();
    writeln!(json, "    \"records\": {},", kernel_ds.n_records()).unwrap();
    writeln!(json, "    \"groups\": {},", kernel_ds.n_groups()).unwrap();
    writeln!(json, "    \"dim\": {},", kernel_ds.dim()).unwrap();
    writeln!(json, "    \"distribution\": \"independent\"").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"kernel\": {{").unwrap();
    writeln!(
        json,
        "    \"exhaustive\": {{ \"millis\": {t_ex:.3}, \"record_pairs\": {} }},",
        r_ex.stats.record_pairs
    )
    .unwrap();
    writeln!(
        json,
        "    \"blocked\": {{ \"millis\": {t_bl:.3}, \"record_pairs\": {}, \"blocks_full\": {}, \"blocks_skipped\": {}, \"records_compared\": {} }},",
        r_bl.stats.record_pairs,
        r_bl.stats.blocks_full,
        r_bl.stats.blocks_skipped,
        r_bl.stats.records_compared
    )
    .unwrap();
    writeln!(json, "    \"record_comparison_ratio\": {ratio:.2}").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"scheduler\": {{").unwrap();
    writeln!(json, "    \"threads\": {threads},").unwrap();
    writeln!(json, "    \"groups\": {},", skew_ds.n_groups()).unwrap();
    writeln!(json, "    \"group_sizes\": \"zipf(1.4)\",").unwrap();
    writeln!(json, "    \"total_work_millis\": {total:.3},").unwrap();
    writeln!(json, "    \"strided_millis\": {strided_makespan:.3},").unwrap();
    writeln!(json, "    \"work_stealing_millis\": {stealing_makespan:.3},").unwrap();
    writeln!(json, "    \"speedup\": {:.3},", strided_makespan / stealing_makespan).unwrap();
    writeln!(
        json,
        "    \"makespan_basis\": \"computed from measured sequential per-group scan costs\","
    )
    .unwrap();
    writeln!(json, "    \"hardware_threads\": {cores},").unwrap();
    writeln!(
        json,
        "    \"measured_end_to_end\": {{ \"strided_millis\": {t_str:.3}, \"work_stealing_millis\": {t_chk:.3} }},"
    )
    .unwrap();
    writeln!(
        json,
        "    \"work_stealing_stats\": {{ \"worker_retries\": {}, \"workers_quarantined\": {}, \"blocks_full\": {}, \"blocks_skipped\": {} }}",
        r_chk.stats.worker_retries,
        r_chk.stats.workers_quarantined,
        r_chk.stats.blocks_full,
        r_chk.stats.blocks_skipped
    )
    .unwrap();
    writeln!(json, "  }}").unwrap();
    writeln!(json, "}}").unwrap();
    std::fs::write("BENCH_kernel.json", &json).expect("write BENCH_kernel.json");
    println!("\nwrote BENCH_kernel.json");
}
