//! Benchmark of the blocked counting kernel, the work-stealing parallel
//! scheduler, and the columnar straddle hot path with the cross-γ pair
//! cache — the performance layers that sit below every algorithm.
//!
//! Three experiments:
//!
//! 1. **Kernel** — NL over a 1000-group independent workload with the
//!    exhaustive record-loop kernel vs. the blocked kernel (sorted groups,
//!    block corners, O(1) full/skip classification). The figure of merit is
//!    hardware-independent: record pairs actually tested.
//! 2. **Scheduler** — the pair-granular work-stealing scheduler, measured
//!    end to end: 1 worker vs. N workers (N capped at 4) on a Zipf-sized
//!    anticorrelated workload, plus the static strided partition as the
//!    seed baseline. The headline is the *measured* multicore speedup and
//!    the honest `hardware_threads` count of the machine that produced it;
//!    the greedy-list makespan model from the per-group scan costs is still
//!    reported, but demoted to a `"modeled": true` sub-object — it predicts
//!    what a 4-core machine would do, it is not a measurement.
//! 3. **Hot path** — ns per tested record pair of the row-wise straddle
//!    loop vs. the scalar columnar bitmask kernel vs. the AVX2 columnar
//!    kernel on a straddle-heavy anticorrelated workload (identical
//!    `Stats`, asserted; the AVX2 row is skipped visibly when the CPU lacks
//!    the feature), plus a 5-point γ sweep through the shared
//!    [`aggsky_core::PairCache`] reporting hit/miss/resume counts and the
//!    sweep's wall clock against independent uncached runs. Written to
//!    `BENCH_hotpath.json`.
//!
//! Prints markdown tables and writes the raw numbers to
//! `BENCH_kernel.json` / `BENCH_hotpath.json` in the current directory
//! (hand-rendered JSON; the workspace has no serde). One extra instrumented
//! scheduler run exports a Chrome trace (`BENCH_kernel_trace.json`,
//! loadable in Perfetto) and a per-phase span summary
//! (`BENCH_kernel_spans.txt`) next to it.
//!
//! A fourth experiment, **`--dynamic`**, benchmarks epoch-based live
//! serving: single-insert publish latency and batched write throughput
//! through [`SkylineService`] against a from-scratch rebuild + recompute of
//! the same post-batch state, asserting every published skyline
//! bit-identical to the oracle and reporting the Property-2 deferral rate.
//! Written to `BENCH_dynamic.json`, gated at ≥5x batched speedup.
//!
//! Usage: `kernel_bench [records] [repeats] [--hotpath-only] [--dynamic]
//! [--gate]` (defaults 30000, 3). `--hotpath-only` runs just experiment 3;
//! `--dynamic` runs just experiment 4; `--gate`
//! additionally enforces the regression gates and exits nonzero when one
//! fails, so CI can run `kernel_bench --gate` directly. Hardware-dependent
//! gates degrade honestly: the AVX2 gate is skipped (with a visible SKIP
//! line) when the CPU lacks AVX2 or `AGGSKY_FORCE_SCALAR` is set, and the
//! multicore gate is skipped when the machine has fewer than 2 hardware
//! threads.

use aggsky_bench::report::fmt_ms;
use aggsky_bench::MarkdownTable;
use aggsky_core::obs::{export_chrome, render_summary, TraceRecorder};
use aggsky_core::paircount::{compare_groups, PairOptions};
use aggsky_core::{
    compare_groups_blocked, compare_groups_columnar, compare_groups_columnar_scalar, cpu,
    gamma_sweep_ctx, parallel_skyline_ctx, parallel_skyline_strided, parallel_skyline_with,
    AlgoOptions, Algorithm, Gamma, GroupedDataset, GroupedDatasetBuilder, KernelConfig, Mbb,
    PreparedDataset, RunContext, SkylineResult, SkylineService, Stats, WriteBatch, MAX_LANE_BLOCK,
};
use aggsky_datagen::{Distribution, GroupSizes, SyntheticConfig};
use aggsky_spatial::{Aabb, RTree};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Best-of-`repeats` wall time in ms, plus the (identical) last result.
fn time<F: Fn() -> SkylineResult>(repeats: usize, f: F) -> (f64, SkylineResult) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        result = Some(r);
    }
    (best, result.unwrap())
}

/// Best-of-`repeats` sequential wall time in ms of each group's dominator
/// scan — the unit of work both schedulers distribute (mirrors the worker
/// loop in `parallel_skyline`).
fn per_group_costs(ds: &GroupedDataset, gamma: Gamma, repeats: usize) -> Vec<f64> {
    let boxes = Mbb::of_all_groups(ds);
    let tree = RTree::bulk_load(
        ds.dim(),
        boxes.iter().enumerate().map(|(g, b)| (Aabb::point(&b.max), g)).collect(),
    );
    let opts = PairOptions { stop_rule: true, need_bar: false, corrected_bar: false };
    let mut costs = vec![f64::INFINITY; ds.n_groups()];
    let mut candidates = Vec::new();
    for _ in 0..repeats.max(1) {
        for g1 in ds.group_ids() {
            let start = Instant::now();
            tree.window_query_into(&Aabb::at_least(&boxes[g1].min), &mut candidates);
            let mut stats = Stats::default();
            for &g2 in candidates.iter() {
                if g2 == g1 {
                    continue;
                }
                let v = compare_groups(
                    ds,
                    g2,
                    g1,
                    gamma,
                    Some((&boxes[g2], &boxes[g1])),
                    opts,
                    &mut stats,
                );
                if v.forward.dominates() {
                    break;
                }
            }
            costs[g1] = costs[g1].min(start.elapsed().as_secs_f64() * 1e3);
        }
    }
    costs
}

/// Wall clock of the static strided partition: worker `t` processes groups
/// `t, t+T, …` back to back, so the makespan is the slowest worker's sum.
fn strided_makespan(costs: &[f64], threads: usize) -> f64 {
    (0..threads).map(|t| costs.iter().skip(t).step_by(threads).sum()).fold(0.0f64, f64::max)
}

/// Wall clock of the atomic-counter chunk scheduler: workers grab the next
/// chunk whenever they finish one, i.e. greedy list scheduling over chunks.
fn work_stealing_makespan(costs: &[f64], threads: usize) -> f64 {
    let chunk = (costs.len() / (threads * 8)).max(1);
    let mut workers = vec![0.0f64; threads];
    for c in costs.chunks(chunk) {
        let next: f64 = c.iter().sum();
        let idlest =
            workers.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).unwrap();
        workers[idlest] += next;
    }
    workers.iter().fold(0.0f64, |a, &b| a.max(b))
}

/// Gate: the columnar straddle kernel must beat the row-wise loop by at
/// least this factor on the straddle-heavy workload. The measured ratio
/// sits well above 2 on commodity hardware; 1.5 absorbs noisy CI machines
/// while still catching a de-vectorized kernel.
const MIN_COLUMNAR_SPEEDUP: f64 = 1.5;

/// Gate: the AVX2 columnar kernel must beat the *scalar* columnar kernel
/// by at least this factor at d=4 (4 key lanes + the sum lane, i.e. five
/// packed compares replace twenty scalar ones per vector). Only enforced
/// when the CPU actually has AVX2 and `AGGSKY_FORCE_SCALAR` is unset.
const MIN_AVX2_SPEEDUP: f64 = 1.5;

/// Gate: measured end-to-end wall-clock speedup of N parallel workers over
/// 1 worker on the skewed scheduler workload. Only enforced on machines
/// with at least 2 hardware threads — a 1-core box serializes the workers
/// and the ratio collapses to ~1 by construction, which is a fact about
/// the machine, not the scheduler.
const MIN_MULTICORE_SPEEDUP: f64 = 1.3;

/// Gate: fraction of cache lookups served outright (no fresh counting)
/// across the 5-point γ sweep. Four of five runs repeat the first run's
/// pairs, so the structural ceiling is 0.8; 0.5 catches a cache that stops
/// memoizing or a sweep that stops sharing it.
const MIN_SWEEP_HIT_RATE: f64 = 0.5;

/// Experiment 3: the columnar straddle hot path and the cross-γ cache.
/// Returns `(columnar_speedup, avx2_speedup, hit_rate)` for the gates;
/// `avx2_speedup` is `None` when the AVX2 path is unavailable (or forced
/// off), in which case the gate is skipped.
fn hotpath(records: usize, repeats: usize) -> (f64, Option<f64>, f64) {
    // Straddle-heavy workload: anticorrelated classes spread over most of
    // the data space, so block corners rarely classify a pair as full/skip
    // and nearly all counting lands in the straddle loop under test.
    let ds = SyntheticConfig {
        n_records: records,
        n_groups: (records / 500).max(8),
        dim: 4,
        spread: 0.6,
        ..SyntheticConfig::paper_default(Distribution::AntiCorrelated)
    }
    .generate();
    let prep = PreparedDataset::build(&ds, MAX_LANE_BLOCK).expect("lane-sized blocks are valid");
    assert!(prep.lanes_enabled(), "MAX_LANE_BLOCK blocks must carry key lanes");
    // No stopping rule: both loops must count every straddling pair, which
    // makes the per-pair cost comparable and the Stats assert exact.
    let opts = PairOptions { stop_rule: false, need_bar: false, corrected_bar: false };

    type StraddleLoop = fn(
        &PreparedDataset,
        usize,
        usize,
        Gamma,
        Option<(&Mbb, &Mbb)>,
        PairOptions,
        &mut Stats,
    ) -> aggsky_core::paircount::PairVerdict;
    let run = |straddle: StraddleLoop| -> (f64, Stats) {
        let mut best = f64::INFINITY;
        let mut out = Stats::default();
        for _ in 0..repeats.max(1) {
            let mut stats = Stats::default();
            let start = Instant::now();
            for g1 in ds.group_ids() {
                for g2 in (g1 + 1)..ds.n_groups() {
                    let v = straddle(&prep, g1, g2, Gamma::DEFAULT, None, opts, &mut stats);
                    std::hint::black_box(v);
                }
            }
            best = best.min(start.elapsed().as_secs_f64() * 1e3);
            out = stats;
        }
        (best, out)
    };
    let (t_row, s_row) = run(compare_groups_blocked);
    let (t_scl, s_scl) = run(compare_groups_columnar_scalar);
    // The auto path dispatches to the AVX2 kernel when the CPU has it.
    let simd = cpu::simd_active();
    let (t_col, s_col) = run(compare_groups_columnar);
    assert_eq!(s_row, s_scl, "straddle kernels must charge identical stats");
    assert_eq!(s_scl, s_col, "AVX2 and scalar columnar must charge identical stats");
    let tested = s_row.records_compared.max(1);
    let ns = |t: f64| t * 1e6 / tested as f64;
    let speedup = t_row / t_scl;
    let avx2_speedup = simd.then(|| t_scl / t_col);

    println!(
        "\n## Straddle hot path — row-wise vs columnar (scalar / AVX2), anticorrelated, {} records / {} groups, d={}, block {}\n",
        ds.n_records(),
        ds.n_groups(),
        ds.dim(),
        MAX_LANE_BLOCK
    );
    let mut table = MarkdownTable::new(vec!["straddle loop", "ms", "ns / tested pair"]);
    table.push_row(vec!["row-wise".to_string(), fmt_ms(t_row), format!("{:.2}", ns(t_row))]);
    table.push_row(vec![
        "columnar (scalar)".to_string(),
        fmt_ms(t_scl),
        format!("{:.2}", ns(t_scl)),
    ]);
    let avx2_label =
        if simd { "columnar (AVX2)" } else { "columnar (auto = scalar; no AVX2)" }.to_string();
    table.push_row(vec![avx2_label, fmt_ms(t_col), format!("{:.2}", ns(t_col))]);
    table.print();
    println!(
        "\n{tested} record pairs tested, identical stats, scalar-columnar speedup {speedup:.2}x \
         over row-wise (gate {MIN_COLUMNAR_SPEEDUP}x)"
    );
    match avx2_speedup {
        Some(s) => println!(
            "AVX2 speedup {s:.2}x over scalar columnar (gate {MIN_AVX2_SPEEDUP}x when AVX2 is present)"
        ),
        None => println!(
            "SKIP: AVX2 unavailable on this CPU (or AGGSKY_FORCE_SCALAR set); \
             the auto columnar path ran the scalar kernel"
        ),
    }

    // ---- Cross-γ pair cache on a 5-point sweep ----
    let gammas: Vec<Gamma> =
        [0.5, 0.6, 0.75, 0.9, 0.99].iter().map(|&g| Gamma::new(g).expect("valid γ")).collect();
    let sweep_opts = AlgoOptions {
        kernel: KernelConfig::Columnar { block_size: MAX_LANE_BLOCK },
        ..AlgoOptions::exact(Gamma::DEFAULT)
    };
    let start = Instant::now();
    let outcome =
        gamma_sweep_ctx(&ds, Algorithm::NestedLoop, &gammas, sweep_opts, &RunContext::unlimited())
            .expect("valid block size");
    let t_sweep = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(outcome.runs.len(), gammas.len(), "unlimited sweep must finish");

    let start = Instant::now();
    for &gamma in &gammas {
        let solo = Algorithm::NestedLoop
            .run_with(&ds, AlgoOptions { gamma, ..sweep_opts })
            .expect("valid kernel config");
        let swept =
            &outcome.runs[gammas.iter().position(|g| *g == gamma).expect("swept γ")].outcome;
        assert_eq!(
            swept.clone().unwrap_or_partial().skyline,
            solo.skyline,
            "cached sweep must match the uncached run at γ={gamma}"
        );
    }
    let t_solo = start.elapsed().as_secs_f64() * 1e3;

    let (mut hits, mut misses, mut resumes) = (0u64, 0u64, 0u64);
    let mut per_run = String::new();
    for (i, r) in outcome.runs.iter().enumerate() {
        let s = r.outcome.stats();
        hits += s.cache_hits;
        misses += s.cache_misses;
        resumes += s.cache_resumes;
        if i > 0 {
            per_run.push_str(", ");
        }
        write!(
            per_run,
            "{{ \"gamma\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \"cache_resumes\": {}, \"record_pairs\": {} }}",
            r.gamma, s.cache_hits, s.cache_misses, s.cache_resumes, s.record_pairs
        )
        .unwrap();
    }
    let lookups = (hits + misses + resumes).max(1);
    let hit_rate = hits as f64 / lookups as f64;

    println!(
        "\n## Cross-γ pair cache — NL sweep over γ ∈ {{0.5, 0.6, 0.75, 0.9, 0.99}}\n\n\
         sweep {} ms vs {} ms independent ({:.2}x); {hits} hits / {misses} misses / {resumes} resumes \
         over {lookups} lookups → hit rate {hit_rate:.2} (gate {MIN_SWEEP_HIT_RATE}), \
         {} pairs memoized",
        fmt_ms(t_sweep),
        fmt_ms(t_solo),
        t_solo / t_sweep,
        outcome.memoized_pairs
    );

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"workload\": {{").unwrap();
    writeln!(json, "    \"records\": {},", ds.n_records()).unwrap();
    writeln!(json, "    \"groups\": {},", ds.n_groups()).unwrap();
    writeln!(json, "    \"dim\": {},", ds.dim()).unwrap();
    writeln!(json, "    \"distribution\": \"anticorrelated\",").unwrap();
    writeln!(json, "    \"block_size\": {MAX_LANE_BLOCK}").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"straddle_kernel\": {{").unwrap();
    writeln!(
        json,
        "    \"row_wise\": {{ \"millis\": {t_row:.3}, \"ns_per_tested_pair\": {:.3} }},",
        ns(t_row)
    )
    .unwrap();
    writeln!(
        json,
        "    \"columnar_scalar\": {{ \"millis\": {t_scl:.3}, \"ns_per_tested_pair\": {:.3} }},",
        ns(t_scl)
    )
    .unwrap();
    writeln!(json, "    \"avx2\": {{").unwrap();
    writeln!(json, "      \"active\": {simd},").unwrap();
    writeln!(json, "      \"millis\": {t_col:.3}, \"ns_per_tested_pair\": {:.3},", ns(t_col))
        .unwrap();
    match avx2_speedup {
        Some(s) => writeln!(json, "      \"speedup_vs_scalar\": {s:.3},").unwrap(),
        None => writeln!(json, "      \"speedup_vs_scalar\": null,").unwrap(),
    }
    writeln!(json, "      \"speedup_gate\": {MIN_AVX2_SPEEDUP}").unwrap();
    writeln!(json, "    }},").unwrap();
    writeln!(json, "    \"record_pairs_tested\": {tested},").unwrap();
    writeln!(json, "    \"speedup\": {speedup:.3},").unwrap();
    writeln!(json, "    \"speedup_gate\": {MIN_COLUMNAR_SPEEDUP}").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"gamma_sweep\": {{").unwrap();
    writeln!(json, "    \"algorithm\": \"NL\",").unwrap();
    writeln!(json, "    \"gammas\": [0.5, 0.6, 0.75, 0.9, 0.99],").unwrap();
    writeln!(json, "    \"sweep_millis\": {t_sweep:.3},").unwrap();
    writeln!(json, "    \"independent_millis\": {t_solo:.3},").unwrap();
    writeln!(json, "    \"cache_hits\": {hits},").unwrap();
    writeln!(json, "    \"cache_misses\": {misses},").unwrap();
    writeln!(json, "    \"cache_resumes\": {resumes},").unwrap();
    writeln!(json, "    \"hit_rate\": {hit_rate:.4},").unwrap();
    writeln!(json, "    \"hit_rate_gate\": {MIN_SWEEP_HIT_RATE},").unwrap();
    writeln!(json, "    \"memoized_pairs\": {},", outcome.memoized_pairs).unwrap();
    writeln!(json, "    \"per_run\": [{per_run}]").unwrap();
    writeln!(json, "  }}").unwrap();
    writeln!(json, "}}").unwrap();
    std::fs::write("BENCH_hotpath.json", &json).expect("write BENCH_hotpath.json");
    println!("wrote BENCH_hotpath.json");

    (speedup, avx2_speedup, hit_rate)
}

/// Gate: batched incremental maintenance through the serving layer must
/// beat a from-scratch prepare + recompute of the same post-batch state by
/// at least this factor. The measured ratio sits far above 5 (the
/// incremental writer recounts only the delta rows and defers pairs whose
/// drift interval never crosses γ); 5 catches a regression to full
/// recounting while absorbing noisy CI machines.
const MIN_DYNAMIC_SPEEDUP: f64 = 5.0;

/// Experiment 4 (`--dynamic`): epoch-based live serving vs from-scratch
/// recomputation on a seeded anticorrelated write stream. Returns the
/// batched-throughput speedup for the gate. Every published epoch's
/// skyline is asserted identical to the from-scratch answer over the same
/// live rows.
fn dynamic_bench(records: usize, repeats: usize) -> f64 {
    const SINGLES: usize = 32;
    const BATCHES: usize = 8;
    const BATCH_OPS: usize = 64;

    let gamma = Gamma::DEFAULT;
    let n_groups = (records / 200).max(16);
    let seed_ds = SyntheticConfig {
        n_records: records,
        n_groups,
        dim: 3,
        spread: 0.6,
        ..SyntheticConfig::paper_default(Distribution::AntiCorrelated)
    }
    .generate();
    let svc = SkylineService::from_dataset(&seed_ds, gamma).expect("seed the serving state");

    // Mirror of the live rows, in (label, record) form, for the
    // from-scratch baseline and the op stream's delete targets.
    let mut mirror: Vec<(String, Vec<f64>)> = Vec::new();
    for g in seed_ds.group_ids() {
        for r in seed_ds.records(g) {
            mirror.push((seed_ds.label(g).to_string(), r.to_vec()));
        }
    }

    // Deterministic insert pool from a second-seed anticorrelated stream;
    // every 4th op deletes the oldest surviving row instead, so batches
    // exercise both tally directions of the drift interval.
    let pool = SyntheticConfig {
        n_records: SINGLES + BATCHES * BATCH_OPS,
        n_groups,
        dim: 3,
        spread: 0.6,
        seed: 0x5EED_D11A,
        ..SyntheticConfig::paper_default(Distribution::AntiCorrelated)
    }
    .generate();
    let pool_rows: Vec<(String, Vec<f64>)> = pool
        .group_ids()
        .flat_map(|g| {
            let label = seed_ds.label(g % seed_ds.n_groups()).to_string();
            pool.records(g).map(move |r| (label.clone(), r.to_vec()))
        })
        .collect();
    let mut next_pool = 0usize;
    let mut next_delete = 0usize;
    let mut make_batch = |ops: usize, mirror: &mut Vec<(String, Vec<f64>)>| -> WriteBatch {
        let mut batch = WriteBatch::new();
        for i in 0..ops {
            if i % 4 == 3 && next_delete < mirror.len() {
                let (label, rec) = mirror.remove(next_delete);
                batch = batch.delete(label, &rec);
                // Skip ahead so consecutive deletes spread over groups.
                next_delete += 6;
                next_delete %= mirror.len().max(1);
            } else {
                let (label, rec) = pool_rows[next_pool % pool_rows.len()].clone();
                next_pool += 1;
                batch = batch.insert(label.clone(), &rec);
                mirror.push((label, rec));
            }
        }
        batch
    };

    // From-scratch baseline over the mirror: group, prepare, recompute.
    let full_recompute = |mirror: &[(String, Vec<f64>)]| -> (GroupedDataset, SkylineResult) {
        let mut by_label: std::collections::BTreeMap<&str, Vec<&[f64]>> =
            std::collections::BTreeMap::new();
        for (label, rec) in mirror {
            by_label.entry(label).or_default().push(rec);
        }
        let mut b = GroupedDatasetBuilder::new(3);
        for (label, rows) in &by_label {
            b.push_group(*label, rows).expect("mirror rows are valid");
        }
        let ds = b.build().expect("mirror dataset is valid");
        let result = Algorithm::Indexed.run(&ds, gamma);
        (ds, result)
    };

    // ---- Single-insert latency ----
    let mut single_micros: Vec<f64> = Vec::with_capacity(SINGLES);
    let (mut deferred, mut flushed) = (0u64, 0u64);
    for _ in 0..SINGLES {
        let batch = make_batch(1, &mut mirror);
        let start = Instant::now();
        let receipt = svc.apply(&batch).expect("single-op apply");
        single_micros.push(start.elapsed().as_secs_f64() * 1e6);
        assert!(receipt.interrupted.is_none(), "unlimited apply must finish");
        deferred += receipt.deferred_pairs;
        flushed += receipt.flushed_pairs;
    }
    let single_mean = single_micros.iter().sum::<f64>() / single_micros.len() as f64;
    let single_best = single_micros.iter().fold(f64::INFINITY, |a, &b| a.min(b));

    // ---- Batched throughput vs full recompute ----
    let (mut t_incr, mut t_full) = (0.0f64, 0.0f64);
    for _ in 0..BATCHES {
        let batch = make_batch(BATCH_OPS, &mut mirror);
        let start = Instant::now();
        let receipt = svc.apply(&batch).expect("batched apply");
        t_incr += start.elapsed().as_secs_f64() * 1e3;
        assert!(receipt.interrupted.is_none(), "unlimited apply must finish");
        deferred += receipt.deferred_pairs;
        flushed += receipt.flushed_pairs;

        // Best-of-`repeats` from-scratch recompute of the same state.
        let mut best = f64::INFINITY;
        let mut oracle = None;
        for _ in 0..repeats.max(1) {
            let start = Instant::now();
            let (ds, result) = full_recompute(&mirror);
            best = best.min(start.elapsed().as_secs_f64() * 1e3);
            oracle = Some(ds.sorted_labels(&result.skyline).join(","));
        }
        t_full += best;

        let epoch = svc.current();
        let mut live = epoch.skyline_labels();
        live.sort_unstable();
        assert_eq!(
            live.join(","),
            oracle.expect("at least one recompute ran"),
            "incremental epoch must be bit-identical to the from-scratch skyline"
        );
    }
    let speedup = t_full / t_incr.max(1e-9);
    let settled = (deferred + flushed).max(1);
    let deferral_rate = deferred as f64 / settled as f64;
    let epoch = svc.current();

    println!(
        "\n## Live serving — incremental epochs vs from-scratch recompute, anticorrelated, \
         {records} seed records / {n_groups} groups, d=3\n"
    );
    let mut table = MarkdownTable::new(vec!["write path", "ms total", "per batch"]);
    table.push_row(vec![
        format!("incremental ({BATCHES} batches x {BATCH_OPS} ops)"),
        fmt_ms(t_incr),
        fmt_ms(t_incr / BATCHES as f64),
    ]);
    table.push_row(vec![
        "full rebuild + recompute".to_string(),
        fmt_ms(t_full),
        fmt_ms(t_full / BATCHES as f64),
    ]);
    table.print();
    println!(
        "\nsingle-insert publish latency: mean {single_mean:.0} us, best {single_best:.0} us \
         ({SINGLES} singles); batched speedup {speedup:.1}x over full recompute \
         (gate {MIN_DYNAMIC_SPEEDUP}x); deferral rate {deferral_rate:.2} \
         ({deferred} deferred / {flushed} flushed pair decisions); final epoch {}",
        epoch.id()
    );

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"workload\": {{").unwrap();
    writeln!(json, "    \"seed_records\": {records},").unwrap();
    writeln!(json, "    \"groups\": {n_groups},").unwrap();
    writeln!(json, "    \"dim\": 3,").unwrap();
    writeln!(json, "    \"distribution\": \"anticorrelated\",").unwrap();
    writeln!(json, "    \"gamma\": 0.5").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"single_insert\": {{").unwrap();
    writeln!(json, "    \"ops\": {SINGLES},").unwrap();
    writeln!(json, "    \"mean_micros\": {single_mean:.3},").unwrap();
    writeln!(json, "    \"best_micros\": {single_best:.3}").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"batched\": {{").unwrap();
    writeln!(json, "    \"batches\": {BATCHES},").unwrap();
    writeln!(json, "    \"ops_per_batch\": {BATCH_OPS},").unwrap();
    writeln!(json, "    \"incremental_millis\": {t_incr:.3},").unwrap();
    writeln!(json, "    \"full_recompute_millis\": {t_full:.3},").unwrap();
    writeln!(json, "    \"speedup\": {speedup:.3},").unwrap();
    writeln!(json, "    \"speedup_gate\": {MIN_DYNAMIC_SPEEDUP}").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"deferral\": {{").unwrap();
    writeln!(json, "    \"deferred_pairs\": {deferred},").unwrap();
    writeln!(json, "    \"flushed_pairs\": {flushed},").unwrap();
    writeln!(json, "    \"rate\": {deferral_rate:.4}").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"skylines_bit_identical\": true,").unwrap();
    writeln!(json, "  \"final_epoch\": {}", epoch.id()).unwrap();
    writeln!(json, "}}").unwrap();
    std::fs::write("BENCH_dynamic.json", &json).expect("write BENCH_dynamic.json");
    println!("wrote BENCH_dynamic.json");

    speedup
}

/// Returns `true` when the dynamic-serving gate holds.
fn gate_dynamic(speedup: f64) -> bool {
    if speedup < MIN_DYNAMIC_SPEEDUP {
        eprintln!(
            "FAIL: batched incremental serving is only {speedup:.2}x the full recompute \
             (gate {MIN_DYNAMIC_SPEEDUP}x)"
        );
        return false;
    }
    println!("dynamic serving gate holds");
    true
}

/// Returns `true` when every applicable hot-path gate holds; prints a
/// FAIL line per violated gate and a SKIP line per inapplicable one.
fn gate_hotpath(speedup: f64, avx2_speedup: Option<f64>, hit_rate: f64) -> bool {
    let mut ok = true;
    if speedup < MIN_COLUMNAR_SPEEDUP {
        eprintln!("FAIL: columnar straddle kernel is only {speedup:.2}x the row-wise loop (gate {MIN_COLUMNAR_SPEEDUP}x)");
        ok = false;
    }
    match avx2_speedup {
        Some(s) if s < MIN_AVX2_SPEEDUP => {
            eprintln!("FAIL: AVX2 kernel is only {s:.2}x the scalar columnar kernel (gate {MIN_AVX2_SPEEDUP}x)");
            ok = false;
        }
        Some(_) => {}
        None => println!("SKIP: AVX2 gate (no AVX2 on this CPU, or AGGSKY_FORCE_SCALAR set)"),
    }
    if hit_rate < MIN_SWEEP_HIT_RATE {
        eprintln!("FAIL: γ-sweep cache hit rate {hit_rate:.2} below gate {MIN_SWEEP_HIT_RATE}");
        ok = false;
    }
    if ok {
        println!("hot-path gates hold");
    }
    ok
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let gate = argv.iter().any(|a| a == "--gate");
    let hotpath_only = argv.iter().any(|a| a == "--hotpath-only");
    let dynamic_only = argv.iter().any(|a| a == "--dynamic");
    let mut pos = argv.iter().filter(|a| !a.starts_with("--"));
    let records: usize = pos.next().and_then(|s| s.parse().ok()).unwrap_or(30_000);
    let repeats: usize = pos.next().and_then(|s| s.parse().ok()).unwrap_or(3);
    let gamma = Gamma::DEFAULT;

    if dynamic_only {
        let speedup = dynamic_bench(records, repeats);
        if gate && !gate_dynamic(speedup) {
            std::process::exit(1);
        }
        return;
    }

    if hotpath_only {
        let (speedup, avx2_speedup, hit_rate) = hotpath(records, repeats);
        if gate && !gate_hotpath(speedup, avx2_speedup, hit_rate) {
            std::process::exit(1);
        }
        return;
    }

    // ---- Experiment 1: counting kernel, 1k-group independent workload ----
    let kernel_ds = SyntheticConfig {
        n_records: records,
        n_groups: 1000,
        ..SyntheticConfig::paper_default(Distribution::Independent)
    }
    .generate();

    let exhaustive = AlgoOptions::paper(gamma);
    let blocked = AlgoOptions { kernel: KernelConfig::blocked(), ..exhaustive };
    let (t_ex, r_ex) = time(repeats, || {
        Algorithm::NestedLoop.run_with(&kernel_ds, exhaustive).expect("valid kernel config")
    });
    let (t_bl, r_bl) = time(repeats, || {
        Algorithm::NestedLoop.run_with(&kernel_ds, blocked).expect("valid kernel config")
    });
    assert_eq!(r_ex.skyline, r_bl.skyline, "kernels must agree");
    let ratio = r_ex.stats.record_pairs as f64 / r_bl.stats.record_pairs.max(1) as f64;

    println!(
        "## Counting kernel — NL, independent, {} records / {} groups, d={}\n",
        kernel_ds.n_records(),
        kernel_ds.n_groups(),
        kernel_ds.dim()
    );
    let mut table = MarkdownTable::new(vec![
        "kernel",
        "ms",
        "record pairs tested",
        "blocks full",
        "blocks skipped",
    ]);
    table.push_row(vec![
        "exhaustive".to_string(),
        fmt_ms(t_ex),
        r_ex.stats.record_pairs.to_string(),
        "-".to_string(),
        "-".to_string(),
    ]);
    table.push_row(vec![
        "blocked".to_string(),
        fmt_ms(t_bl),
        r_bl.stats.record_pairs.to_string(),
        r_bl.stats.blocks_full.to_string(),
        r_bl.stats.blocks_skipped.to_string(),
    ]);
    table.print();
    println!("\nrecord-comparison reduction: {ratio:.1}x\n");

    // ---- Experiment 2: pair-granular scheduler, measured end to end ----
    let skew_ds = SyntheticConfig {
        n_records: records,
        n_groups: (records / 500).max(8),
        group_sizes: GroupSizes::Zipf(1.4),
        ..SyntheticConfig::paper_default(Distribution::AntiCorrelated)
    }
    .generate();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // Never ask for more workers than the machine can actually run; on a
    // 1-thread box we still run 2 so the scheduler path is exercised, but
    // the speedup gate below is skipped.
    let workers = cores.clamp(2, 4);
    let par_kernel = KernelConfig::columnar();

    let (t_one, r_one) = time(repeats, || {
        parallel_skyline_with(&skew_ds, gamma, 1, par_kernel).expect("1-worker run failed")
    });
    let (t_many, r_many) = time(repeats, || {
        parallel_skyline_with(&skew_ds, gamma, workers, par_kernel).expect("parallel run failed")
    });
    let (t_str, r_str) = time(repeats, || {
        parallel_skyline_strided(&skew_ds, gamma, workers).expect("strided run failed")
    });
    assert_eq!(r_one.skyline, r_many.skyline, "worker count must not change the skyline");
    assert_eq!(r_str.skyline, r_many.skyline, "schedulers must agree");
    let multicore_speedup = t_one / t_many;

    println!(
        "\n## Parallel scheduler — measured end to end, anticorrelated Zipf(1.4), {} records / {} groups, {cores} hardware threads\n",
        skew_ds.n_records(),
        skew_ds.n_groups()
    );
    let mut table = MarkdownTable::new(vec!["scheduler", "workers", "ms", "vs 1 worker"]);
    table.push_row(vec![
        "pair-granular stealing".to_string(),
        "1".to_string(),
        fmt_ms(t_one),
        "1.00x".to_string(),
    ]);
    table.push_row(vec![
        "pair-granular stealing".to_string(),
        workers.to_string(),
        fmt_ms(t_many),
        format!("{multicore_speedup:.2}x"),
    ]);
    table.push_row(vec![
        "strided (seed)".to_string(),
        workers.to_string(),
        fmt_ms(t_str),
        format!("{:.2}x", t_one / t_str),
    ]);
    table.print();
    println!(
        "\nmeasured end-to-end multicore speedup {multicore_speedup:.2}x with {workers} workers \
         on {cores} hardware threads (gate {MIN_MULTICORE_SPEEDUP}x, applies on >=2 threads)"
    );
    if cores < 2 {
        println!(
            "SKIP: multicore gate needs >=2 hardware threads; this machine has {cores}, so the \
             workers serialize and the ratio measures scheduling overhead, not parallelism"
        );
    }

    // Demoted model (reported under `"modeled": true`): greedy
    // list-scheduling makespans over the measured sequential per-group scan
    // costs — a prediction of a 4-core machine, not a measurement.
    let model_threads = 4usize;
    let group_costs = per_group_costs(&skew_ds, gamma, repeats);
    let total: f64 = group_costs.iter().sum();
    let strided_model = strided_makespan(&group_costs, model_threads);
    let stealing_model = work_stealing_makespan(&group_costs, model_threads);
    println!(
        "modeled {model_threads}-worker makespans from the measured per-group costs \
         ({} ms total work): strided {} ms, work-stealing {} ms ({:.2}x)",
        fmt_ms(total),
        fmt_ms(strided_model),
        fmt_ms(stealing_model),
        strided_model / stealing_model
    );

    // One instrumented work-stealing run: per-worker spans, stolen-batch
    // histograms and the counter totals, exported next to the raw numbers.
    let recorder = Arc::new(TraceRecorder::new());
    let traced_ctx = RunContext::unlimited().with_recorder(recorder.clone());
    let traced = parallel_skyline_ctx(&skew_ds, gamma, workers, par_kernel, &traced_ctx)
        .expect("traced run failed")
        .unwrap_or_partial();
    assert_eq!(traced.skyline, r_many.skyline, "traced run must agree");
    let snapshot = recorder.snapshot();
    std::fs::write("BENCH_kernel_trace.json", export_chrome(&snapshot))
        .expect("write BENCH_kernel_trace.json");
    std::fs::write("BENCH_kernel_spans.txt", render_summary(&snapshot))
        .expect("write BENCH_kernel_spans.txt");
    println!(
        "wrote BENCH_kernel_trace.json (Chrome trace, load in Perfetto) and BENCH_kernel_spans.txt"
    );

    // ---- Raw numbers as JSON ----
    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"workload\": {{").unwrap();
    writeln!(json, "    \"records\": {},", kernel_ds.n_records()).unwrap();
    writeln!(json, "    \"groups\": {},", kernel_ds.n_groups()).unwrap();
    writeln!(json, "    \"dim\": {},", kernel_ds.dim()).unwrap();
    writeln!(json, "    \"distribution\": \"independent\"").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"kernel\": {{").unwrap();
    writeln!(
        json,
        "    \"exhaustive\": {{ \"millis\": {t_ex:.3}, \"record_pairs\": {} }},",
        r_ex.stats.record_pairs
    )
    .unwrap();
    writeln!(
        json,
        "    \"blocked\": {{ \"millis\": {t_bl:.3}, \"record_pairs\": {}, \"blocks_full\": {}, \"blocks_skipped\": {}, \"records_compared\": {} }},",
        r_bl.stats.record_pairs,
        r_bl.stats.blocks_full,
        r_bl.stats.blocks_skipped,
        r_bl.stats.records_compared
    )
    .unwrap();
    writeln!(json, "    \"record_comparison_ratio\": {ratio:.2}").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"scheduler\": {{").unwrap();
    writeln!(json, "    \"workers\": {workers},").unwrap();
    writeln!(json, "    \"hardware_threads\": {cores},").unwrap();
    writeln!(json, "    \"groups\": {},", skew_ds.n_groups()).unwrap();
    writeln!(json, "    \"group_sizes\": \"zipf(1.4)\",").unwrap();
    writeln!(json, "    \"kernel\": \"columnar\",").unwrap();
    writeln!(json, "    \"work_unit\": \"straddle block-pair batch\",").unwrap();
    writeln!(json, "    \"measured\": {{").unwrap();
    writeln!(json, "      \"single_worker_millis\": {t_one:.3},").unwrap();
    writeln!(json, "      \"multi_worker_millis\": {t_many:.3},").unwrap();
    writeln!(json, "      \"strided_millis\": {t_str:.3},").unwrap();
    writeln!(json, "      \"multicore_speedup\": {multicore_speedup:.3},").unwrap();
    writeln!(json, "      \"speedup_gate\": {MIN_MULTICORE_SPEEDUP},").unwrap();
    writeln!(json, "      \"gate_applies\": {}", cores >= 2).unwrap();
    writeln!(json, "    }},").unwrap();
    writeln!(json, "    \"model\": {{").unwrap();
    writeln!(json, "      \"modeled\": true,").unwrap();
    writeln!(
        json,
        "      \"basis\": \"greedy list scheduling over measured sequential per-group scan costs\","
    )
    .unwrap();
    writeln!(json, "      \"threads\": {model_threads},").unwrap();
    writeln!(json, "      \"total_work_millis\": {total:.3},").unwrap();
    writeln!(json, "      \"strided_millis\": {strided_model:.3},").unwrap();
    writeln!(json, "      \"work_stealing_millis\": {stealing_model:.3},").unwrap();
    writeln!(json, "      \"speedup\": {:.3}", strided_model / stealing_model).unwrap();
    writeln!(json, "    }},").unwrap();
    writeln!(
        json,
        "    \"work_stealing_stats\": {{ \"worker_retries\": {}, \"workers_quarantined\": {}, \"blocks_full\": {}, \"blocks_skipped\": {} }}",
        r_many.stats.worker_retries,
        r_many.stats.workers_quarantined,
        r_many.stats.blocks_full,
        r_many.stats.blocks_skipped
    )
    .unwrap();
    writeln!(json, "  }}").unwrap();
    writeln!(json, "}}").unwrap();
    std::fs::write("BENCH_kernel.json", &json).expect("write BENCH_kernel.json");
    println!("\nwrote BENCH_kernel.json");

    // ---- Experiment 3: columnar hot path + cross-γ cache ----
    let (speedup, avx2_speedup, hit_rate) = hotpath(records, repeats);
    if gate {
        let mut ok = gate_hotpath(speedup, avx2_speedup, hit_rate);
        if cores >= 2 {
            if multicore_speedup < MIN_MULTICORE_SPEEDUP {
                eprintln!(
                    "FAIL: measured multicore speedup {multicore_speedup:.2}x below gate \
                     {MIN_MULTICORE_SPEEDUP}x ({workers} workers, {cores} hardware threads)"
                );
                ok = false;
            }
        } else {
            println!("SKIP: multicore gate ({cores} hardware thread)");
        }
        if !ok {
            std::process::exit(1);
        }
        println!("all gates hold");
    }
}
