//! γ as a result-size and cost knob (Section 2.2): sweeps γ from the
//! parameter-free default 0.5 up to 1.0 and reports skyline size and
//! runtime per algorithm, plus the budgeted anytime operator's progress
//! curve at γ = 0.5.
//!
//! Usage: `gamma_sweep [records]` (default 10000).

use aggsky_bench::report::fmt_ms;
use aggsky_bench::{measure, MarkdownTable};
use aggsky_core::{anytime_skyline, Algorithm, Gamma};
use aggsky_datagen::{Distribution, SyntheticConfig};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(10_000);
    let ds = SyntheticConfig {
        n_records: n,
        n_groups: (n / 100).max(2),
        ..SyntheticConfig::paper_default(Distribution::Independent)
    }
    .generate();

    println!("## Gamma sweep — independent data, {n} records, d=5\n");
    let mut table = MarkdownTable::new(vec!["gamma", "skyline", "NL ms", "IN ms"]);
    for gamma_v in [0.5, 0.6, 0.7, 0.8, 0.9, 1.0] {
        let gamma = Gamma::new(gamma_v).unwrap();
        let nl = measure(Algorithm::NestedLoop, &ds, gamma);
        let ind = measure(Algorithm::Indexed, &ds, gamma);
        table.push_row(vec![
            format!("{gamma_v:.1}"),
            nl.skyline_len().to_string(),
            fmt_ms(nl.millis),
            fmt_ms(ind.millis),
        ]);
    }
    table.print();
    println!("\nExpected: the skyline only grows with gamma (domination needs p > gamma),");
    println!("matching the paper's 'gamma controls the size of the result' narrative.\n");

    println!("## Anytime operator — decided groups vs record-pair budget (gamma = 0.5)\n");
    let full = anytime_skyline(&ds, Gamma::DEFAULT, u64::MAX);
    let full_cost = full.stats.record_pairs.max(1);
    let mut table = MarkdownTable::new(vec![
        "budget (% of full)",
        "confirmed in",
        "confirmed out",
        "undecided",
    ]);
    for pct in [0u64, 1, 5, 10, 25, 50, 100] {
        let budget = full_cost * pct / 100;
        let r = anytime_skyline(&ds, Gamma::DEFAULT, budget);
        table.push_row(vec![
            format!("{pct}%"),
            r.confirmed_in.len().to_string(),
            r.confirmed_out.len().to_string(),
            r.undecided.len().to_string(),
        ]);
    }
    table.print();
    println!("\nExpected: monotone progress; cheap pairs first front-loads decisions.");
}
