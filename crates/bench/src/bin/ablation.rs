//! Ablation study of the paper's individual optimizations (Section 3.5's
//! list), beyond what the figures isolate:
//!
//! 1. the Section 3.3 stopping rule (on/off, inside NL),
//! 2. Figure 9 bounding-box pruning (IN vs LO is in the figures; here we
//!    also ablate it inside plain NL),
//! 3. outer-loop sort strategies for SI,
//! 4. the printed ("paper") pruning vs the provably-exact variant,
//! 5. the parallel extension's thread scaling.
//!
//! Usage: `ablation [records]` (default 10000).

use aggsky_bench::report::fmt_ms;
use aggsky_bench::MarkdownTable;
use aggsky_core::{
    indexed, nested_loop, parallel_skyline, sorted, AlgoOptions, Gamma, GroupedDataset,
    SortStrategy,
};
use aggsky_datagen::{Distribution, SyntheticConfig};
use std::time::Instant;

fn time<F: FnOnce() -> aggsky_core::SkylineResult>(f: F) -> (f64, aggsky_core::SkylineResult) {
    let start = Instant::now();
    let r = f();
    (start.elapsed().as_secs_f64() * 1e3, r)
}

fn dataset(n: usize, dist: Distribution) -> GroupedDataset {
    SyntheticConfig {
        n_records: n,
        n_groups: (n / 100).max(2),
        ..SyntheticConfig::paper_default(dist)
    }
    .generate()
}

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(10_000);
    let gamma = Gamma::DEFAULT;

    println!("## Ablation — stopping rule (NL, {n} records, d=5)\n");
    let mut table = MarkdownTable::new(vec![
        "distribution",
        "stop on ms",
        "stop off ms",
        "pairs on",
        "pairs off",
    ]);
    for dist in Distribution::ALL {
        let ds = dataset(n, dist);
        let on = AlgoOptions::paper(gamma);
        let off = AlgoOptions { stop_rule: false, ..on };
        let (t_on, r_on) = time(|| nested_loop(&ds, &on).expect("valid options"));
        let (t_off, r_off) = time(|| nested_loop(&ds, &off).expect("valid options"));
        assert_eq!(r_on.skyline, r_off.skyline);
        table.push_row(vec![
            dist.label().to_string(),
            fmt_ms(t_on),
            fmt_ms(t_off),
            r_on.stats.record_pairs.to_string(),
            r_off.stats.record_pairs.to_string(),
        ]);
    }
    table.print();

    println!("\n## Ablation — bounding-box pruning inside NL\n");
    let mut table =
        MarkdownTable::new(vec!["distribution", "bbox off ms", "bbox on ms", "pairs skipped"]);
    for dist in Distribution::ALL {
        let ds = dataset(n, dist);
        let plain = AlgoOptions::paper(gamma);
        let boxed = AlgoOptions { bbox_prune: true, ..plain };
        let (t_off, r_off) = time(|| nested_loop(&ds, &plain).expect("valid options"));
        let (t_on, r_on) = time(|| nested_loop(&ds, &boxed).expect("valid options"));
        assert_eq!(r_on.skyline, r_off.skyline);
        table.push_row(vec![
            dist.label().to_string(),
            fmt_ms(t_off),
            fmt_ms(t_on),
            r_on.stats.bbox_skipped_pairs.to_string(),
        ]);
    }
    table.print();

    println!("\n## Ablation — SI sort strategies (anti-correlated)\n");
    let ds = dataset(n, Distribution::AntiCorrelated);
    let mut table = MarkdownTable::new(vec!["strategy", "ms", "group pairs"]);
    for (name, strat) in [
        ("insertion order", SortStrategy::InsertionOrder),
        ("corner distance", SortStrategy::CornerDistance),
        ("size, then distance", SortStrategy::SizeThenDistance),
    ] {
        let opts = AlgoOptions { sort: strat, ..AlgoOptions::paper(gamma) };
        let (t, r) = time(|| sorted(&ds, &opts).expect("valid options"));
        table.push_row(vec![name.to_string(), fmt_ms(t), r.stats.group_pairs.to_string()]);
    }
    table.print();

    println!("\n## Ablation — paper pruning vs exact pruning (IN)\n");
    let mut table = MarkdownTable::new(vec![
        "distribution",
        "paper ms",
        "exact ms",
        "paper skyline",
        "exact skyline",
    ]);
    for dist in Distribution::ALL {
        let ds = dataset(n, dist);
        let paper = AlgoOptions::paper(gamma);
        let exact = AlgoOptions::exact(gamma);
        let (t_p, r_p) = time(|| indexed(&ds, &paper).expect("valid options"));
        let (t_e, r_e) = time(|| indexed(&ds, &exact).expect("valid options"));
        table.push_row(vec![
            dist.label().to_string(),
            fmt_ms(t_p),
            fmt_ms(t_e),
            r_p.skyline.len().to_string(),
            r_e.skyline.len().to_string(),
        ]);
    }
    table.print();

    println!("\n## Extension — parallel skyline thread scaling (anti-correlated, 10 rec/class)\n");
    // Many smaller groups give the per-group parallelism something to chew on.
    let ds = SyntheticConfig {
        n_records: n * 2,
        n_groups: (n / 5).max(4),
        ..SyntheticConfig::paper_default(Distribution::AntiCorrelated)
    }
    .generate();
    let mut table = MarkdownTable::new(vec!["threads", "ms", "speedup"]);
    let (base, r1) = time(|| parallel_skyline(&ds, gamma, 1).expect("parallel run failed"));
    table.push_row(vec!["1".to_string(), fmt_ms(base), "1.0x".to_string()]);
    for threads in [2usize, 4, 8] {
        let (t, r) = time(|| parallel_skyline(&ds, gamma, threads).expect("parallel run failed"));
        assert_eq!(r.skyline, r1.skyline);
        table.push_row(vec![threads.to_string(), fmt_ms(t), format!("{:.1}x", base / t)]);
    }
    table.print();
    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    println!("\n(host reports {cores} available core(s); speedups are bounded by that)");
}
