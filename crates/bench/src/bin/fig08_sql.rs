//! Figure 8: scalability of the direct SQL implementation (Algorithm 1).
//!
//! The paper runs the Algorithm 1 query on sqlite and shows super-linear
//! growth; here the same query text runs on the `aggsky-sql` engine, next
//! to the NL algorithm on identical data, demonstrating the gap the
//! specialized algorithms close.
//!
//! Usage: `fig08_sql [max_records]` (default 4000; the sweep doubles up to
//! the cap).

use aggsky_bench::report::fmt_ms;
use aggsky_bench::{load_sql_baseline, measure, MarkdownTable, ALGORITHM_1};
use aggsky_core::{Algorithm, Gamma};
use aggsky_datagen::{Distribution, SyntheticConfig};
use std::time::Instant;

fn main() {
    let cap: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(4000);
    println!("## Figure 8 — direct SQL implementation vs NL (2 dims, 100 records/class)\n");
    let mut table =
        MarkdownTable::new(vec!["records", "groups", "SQL ms", "NL ms", "SQL/NL", "skyline"]);
    let mut sql_curve: Vec<(f64, f64)> = Vec::new();
    let mut nl_curve: Vec<(f64, f64)> = Vec::new();
    let mut n = 500;
    while n <= cap {
        let ds = SyntheticConfig {
            n_records: n,
            n_groups: (n / 100).max(2),
            dim: 2,
            ..SyntheticConfig::paper_default(Distribution::Independent)
        }
        .generate();
        let mut db = load_sql_baseline(&ds);
        let start = Instant::now();
        let sql_result = db.execute(ALGORITHM_1).expect("algorithm 1 runs");
        let sql_ms = start.elapsed().as_secs_f64() * 1e3;

        let nl = measure(Algorithm::NestedLoop, &ds, Gamma::DEFAULT);

        // Cross-check: both must select the same directors.
        let mut sql_names: Vec<String> = sql_result.rows.iter().map(|r| r[0].to_string()).collect();
        sql_names.sort();
        let mut nl_names: Vec<&str> = nl.result.skyline.iter().map(|&g| ds.label(g)).collect();
        nl_names.sort_unstable();
        assert_eq!(sql_names, nl_names, "SQL and NL disagree at n={n}");

        table.push_row(vec![
            n.to_string(),
            ds.n_groups().to_string(),
            fmt_ms(sql_ms),
            fmt_ms(nl.millis),
            format!("{:.0}x", sql_ms / nl.millis.max(1e-6)),
            sql_names.len().to_string(),
        ]);
        sql_curve.push((n as f64, sql_ms.max(1e-3)));
        nl_curve.push((n as f64, nl.millis.max(1e-3)));
        n *= 2;
    }
    table.print();
    println!();
    print!(
        "{}",
        aggsky_bench::render(
            "runtime (ms, log scale) vs records — SQL baseline vs NL",
            &[
                aggsky_bench::Series::new("SQL", sql_curve),
                aggsky_bench::Series::new("NL", nl_curve),
            ],
            64,
            14,
            true,
        )
    );
    println!("\nExpected shape: SQL time grows ~quadratically with records and is orders of");
    println!("magnitude above NL; the gap widens with scale (paper: up to two orders).");
}
