//! Figure 13: scalability on anti-correlated data —
//! (a) records sweep with Zipfian (heavy-tail) records-per-class,
//! (b) index-based methods on a wider range of records,
//! (c) varying records per class at a fixed total.
//!
//! Usage: `fig13_scaling [max_records_b]` (default 50000 for panel b).

use aggsky_bench::report::fmt_ms;
use aggsky_bench::{measure, measure_all, MarkdownTable};
use aggsky_core::{Algorithm, Gamma};
use aggsky_datagen::{Distribution, GroupSizes, SyntheticConfig};

fn main() {
    let cap_b: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(50_000);

    // --- (a): Zipfian class sizes ---
    println!("## Figure 13(a) — anti-correlated, Zipfian records-per-class\n");
    let mut headers = vec!["records".to_string()];
    headers.extend(Algorithm::EVALUATED.iter().map(|a| a.short_name().to_string()));
    headers.push("largest class".to_string());
    let mut table = MarkdownTable::new(headers.clone());
    for n in [2_500usize, 5_000, 10_000, 15_000, 20_000] {
        let ds = SyntheticConfig {
            n_records: n,
            n_groups: (n / 100).max(2),
            group_sizes: GroupSizes::Zipf(1.0),
            ..SyntheticConfig::paper_default(Distribution::AntiCorrelated)
        }
        .generate();
        let ms = measure_all(&ds, Gamma::DEFAULT);
        let largest = ds.group_ids().map(|g| ds.group_len(g)).max().unwrap();
        let mut row = vec![n.to_string()];
        row.extend(ms.iter().map(|m| fmt_ms(m.millis)));
        row.push(largest.to_string());
        table.push_row(row);
    }
    table.print();
    println!("\nExpected: size-aware sorted access (SI) gains ground under heavy tails, but");
    println!("index-based methods stay ahead.\n");

    // --- (b): wider record range, index methods only ---
    println!("## Figure 13(b) — anti-correlated, wide range, index-based methods\n");
    let mut table = MarkdownTable::new(vec!["records", "IN", "LO", "skyline"]);
    let mut n = 10_000usize;
    while n <= cap_b {
        let ds = SyntheticConfig {
            n_records: n,
            n_groups: (n / 100).max(2),
            ..SyntheticConfig::paper_default(Distribution::AntiCorrelated)
        }
        .generate();
        let m_in = measure(Algorithm::Indexed, &ds, Gamma::DEFAULT);
        let m_lo = measure(Algorithm::IndexedBbox, &ds, Gamma::DEFAULT);
        assert_eq!(m_in.result.skyline, m_lo.result.skyline);
        table.push_row(vec![
            n.to_string(),
            fmt_ms(m_in.millis),
            fmt_ms(m_lo.millis),
            m_in.skyline_len().to_string(),
        ]);
        n *= 2;
    }
    table.print();

    // --- (c): records per class sweep at fixed total ---
    println!("\n## Figure 13(c) — anti-correlated, 10 000 records, varying records/class\n");
    let mut headers = vec!["rec/class".to_string(), "classes".to_string()];
    headers.extend(Algorithm::EVALUATED.iter().map(|a| a.short_name().to_string()));
    let mut table = MarkdownTable::new(headers);
    for rpc in [10usize, 25, 50, 100, 250, 500, 1000] {
        let ds = SyntheticConfig {
            n_records: 10_000,
            n_groups: 10_000 / rpc,
            ..SyntheticConfig::paper_default(Distribution::AntiCorrelated)
        }
        .generate();
        let ms = measure_all(&ds, Gamma::DEFAULT);
        let mut row = vec![rpc.to_string(), ds.n_groups().to_string()];
        row.extend(ms.iter().map(|m| fmt_ms(m.millis)));
        table.push_row(row);
    }
    table.print();
    println!("\nExpected: many small classes behave like a record skyline (group-level pruning");
    println!("matters less); few large classes stress the internal (pair-counting) loop.");
}
