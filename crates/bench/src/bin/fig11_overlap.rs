//! Figure 11: runtime vs group overlapping (class spread as a fraction of
//! the data space) under the three distributions. Large overlap is where
//! the purely index-based method degrades below even the nested loop.
//!
//! Usage: `fig11_overlap [records]` (default 10000).

use aggsky_bench::report::fmt_ms;
use aggsky_bench::{measure_all, MarkdownTable};
use aggsky_core::{Algorithm, Gamma};
use aggsky_datagen::{Distribution, SyntheticConfig};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(10_000);
    println!("## Figure 11 — runtime (ms) vs class spread ({n} records, d=5, 100 rec/class)\n");
    for dist in Distribution::ALL {
        println!("### {} data\n", dist.label());
        let mut headers = vec!["spread".to_string()];
        headers.extend(Algorithm::EVALUATED.iter().map(|a| a.short_name().to_string()));
        headers.push("skyline".to_string());
        let mut table = MarkdownTable::new(headers);
        for spread in [0.1, 0.2, 0.4, 0.6, 0.8] {
            let ds = SyntheticConfig {
                n_records: n,
                n_groups: (n / 100).max(2),
                spread,
                ..SyntheticConfig::paper_default(dist)
            }
            .generate();
            let ms = measure_all(&ds, Gamma::DEFAULT);
            let mut row = vec![format!("{:.0}%", spread * 100.0)];
            row.extend(ms.iter().map(|m| fmt_ms(m.millis)));
            row.push(ms[0].skyline_len().to_string());
            table.push_row(row);
        }
        table.print();
        println!();
    }
    println!("Expected shape: at high overlap the window query stops pruning and IN loses its");
    println!("edge (paper: falls behind even NL); LO's bounding boxes also stop helping.");
}
