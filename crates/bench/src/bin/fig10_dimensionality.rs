//! Figure 10: runtime vs dimensionality (d = 2..7) under the three record
//! distributions, all five algorithms, paper defaults otherwise (10 000
//! records, 100 records/class, 20 % spread, γ = 0.5).
//!
//! Usage: `fig10_dimensionality [records]` (default 10000).

use aggsky_bench::report::fmt_ms;
use aggsky_bench::{measure_all, MarkdownTable};
use aggsky_core::{Algorithm, Gamma};
use aggsky_datagen::{Distribution, SyntheticConfig};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(10_000);
    println!("## Figure 10 — runtime (ms) vs dimensionality ({n} records, 100 rec/class)\n");
    for dist in Distribution::ALL {
        println!("### {} data\n", dist.label());
        let mut headers = vec!["d".to_string()];
        headers.extend(Algorithm::EVALUATED.iter().map(|a| a.short_name().to_string()));
        headers.push("skyline".to_string());
        let mut table = MarkdownTable::new(headers);
        for dim in 2..=7 {
            let ds = SyntheticConfig {
                n_records: n,
                n_groups: (n / 100).max(2),
                dim,
                ..SyntheticConfig::paper_default(dist)
            }
            .generate();
            let ms = measure_all(&ds, Gamma::DEFAULT);
            let mut row = vec![dim.to_string()];
            row.extend(ms.iter().map(|m| fmt_ms(m.millis)));
            row.push(ms[0].skyline_len().to_string());
            table.push_row(row);
        }
        table.print();
        println!();
    }
    println!("Expected shape: index-based IN/LO fastest, especially on anti-correlated data;");
    println!("TR and SI close the gap on independent and correlated data.");
}
