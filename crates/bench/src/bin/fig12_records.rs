//! Figure 12: scalability in the number of records (fixed 100 records per
//! class, so the number of groups scales too) under the three
//! distributions.
//!
//! Usage: `fig12_records [max_records]` (default 25000).

use aggsky_bench::report::fmt_ms;
use aggsky_bench::{measure_all, MarkdownTable};
use aggsky_core::{Algorithm, Gamma};
use aggsky_datagen::{Distribution, SyntheticConfig};

fn main() {
    let cap: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(25_000);
    println!("## Figure 12 — runtime (ms) vs records (d=5, 100 rec/class)\n");
    let sweep: Vec<usize> = [2_500usize, 5_000, 10_000, 15_000, 20_000, 25_000]
        .into_iter()
        .filter(|&n| n <= cap)
        .collect();
    for dist in Distribution::ALL {
        println!("### {} data\n", dist.label());
        let mut headers = vec!["records".to_string()];
        headers.extend(Algorithm::EVALUATED.iter().map(|a| a.short_name().to_string()));
        headers.push("skyline".to_string());
        let mut table = MarkdownTable::new(headers);
        let mut curves: Vec<Vec<(f64, f64)>> = vec![Vec::new(); Algorithm::EVALUATED.len()];
        for &n in &sweep {
            let ds = SyntheticConfig {
                n_records: n,
                n_groups: (n / 100).max(2),
                ..SyntheticConfig::paper_default(dist)
            }
            .generate();
            let ms = measure_all(&ds, Gamma::DEFAULT);
            let mut row = vec![n.to_string()];
            row.extend(ms.iter().map(|m| fmt_ms(m.millis)));
            row.push(ms[0].skyline_len().to_string());
            table.push_row(row);
            for (c, m) in curves.iter_mut().zip(ms.iter()) {
                c.push((n as f64, m.millis.max(1e-3)));
            }
        }
        table.print();
        println!();
        let series: Vec<aggsky_bench::Series> = Algorithm::EVALUATED
            .iter()
            .zip(curves)
            .map(|(a, pts)| aggsky_bench::Series::new(a.short_name(), pts))
            .collect();
        print!(
            "{}",
            aggsky_bench::render(
                &format!("runtime (ms, log scale) vs records — {}", dist.label()),
                &series,
                64,
                14,
                true
            )
        );
        println!();
    }
    println!("Expected shape: index-based methods dominate on anti-correlated data; the gap");
    println!("narrows on independent and correlated data.");
}
