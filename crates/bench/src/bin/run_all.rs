//! Runs every figure/table harness in sequence (with optionally reduced
//! sizes) and prints one combined report.
//!
//! Usage: `run_all [quick]` — `quick` caps the sweeps for a fast smoke run.

use std::process::Command;

fn main() {
    let quick = std::env::args().nth(1).map(|a| a == "quick").unwrap_or(false);
    let exe_dir =
        std::env::current_exe().expect("current exe path").parent().expect("exe dir").to_path_buf();
    let jobs: Vec<(&str, Vec<String>)> = vec![
        ("table2_directors", vec![]),
        ("fig08_sql", vec![if quick { "2000" } else { "8000" }.to_string()]),
        ("fig10_dimensionality", vec![if quick { "2000" } else { "10000" }.to_string()]),
        ("fig11_overlap", vec![if quick { "2000" } else { "10000" }.to_string()]),
        ("fig12_records", vec![if quick { "5000" } else { "25000" }.to_string()]),
        ("fig13_scaling", vec![if quick { "10000" } else { "80000" }.to_string()]),
        ("fig14_nba", vec![if quick { "3000" } else { "15000" }.to_string()]),
        ("ablation", vec![if quick { "2000" } else { "10000" }.to_string()]),
        ("gamma_sweep", vec![if quick { "2000" } else { "10000" }.to_string()]),
    ];
    for (bin, args) in jobs {
        println!("\n{}\n", "=".repeat(72));
        let status = Command::new(exe_dir.join(bin))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed with {status}");
    }
}
