//! Figure 14: the real-data experiment — NBA player-season statistics
//! grouped by different attributes with 3-8 skyline attributes.
//!
//! The paper used the databasebasketball.com dump (~15 000 records); this
//! harness uses the deterministic synthetic stand-in of `aggsky-datagen`
//! (same schema, same grouping cardinalities, positively correlated stats)
//! and reports the naive exhaustive nested loop (NL0, the non-SQL baseline)
//! next to the five algorithms. The SQL baseline's quadratic self-join at
//! 15 000 records is measured separately by `fig08_sql`.
//!
//! Usage: `fig14_nba [records]` (default 15000).

use aggsky_bench::report::fmt_ms;
use aggsky_bench::{measure, measure_all, MarkdownTable};
use aggsky_core::{Algorithm, Gamma};
use aggsky_datagen::{generate_nba, nba_dataset, NbaGrouping};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(15_000);
    let records = generate_nba(n, 42);
    println!("## Figure 14 — synthetic NBA data ({n} player-season records)\n");
    let mut headers = vec!["group by".to_string(), "groups".to_string(), "attrs".to_string()];
    headers.push("NL0".to_string());
    headers.extend(Algorithm::EVALUATED.iter().map(|a| a.short_name().to_string()));
    headers.push("skyline".to_string());
    headers.push("best vs NL0".to_string());
    let mut table = MarkdownTable::new(headers);
    for grouping in NbaGrouping::ALL {
        for attrs in [3usize, 8] {
            let ds = nba_dataset(&records, grouping, attrs);
            let naive = measure(Algorithm::Naive, &ds, Gamma::DEFAULT);
            let ms = measure_all(&ds, Gamma::DEFAULT);
            // NL (exact) must always match the exhaustive oracle.
            assert_eq!(ms[0].result.skyline, naive.result.skyline, "{grouping:?}/{attrs}");
            let best = ms.iter().map(|m| m.millis).fold(f64::INFINITY, f64::min);
            let mut row = vec![
                grouping.label().to_string(),
                ds.n_groups().to_string(),
                attrs.to_string(),
                fmt_ms(naive.millis),
            ];
            row.extend(ms.iter().map(|m| fmt_ms(m.millis)));
            row.push(ms[0].skyline_len().to_string());
            row.push(format!("{:.0}x", naive.millis / best.max(1e-6)));
            table.push_row(row);
        }
    }
    table.print();
    println!("\nExpected shape: the optimized algorithms never lose to the exhaustive");
    println!("baseline, with gains ranging from ~none (few huge, mutually incomparable");
    println!("groups, where nothing can be pruned) to about two orders of magnitude.");
    println!("Note: on the synthetic stand-in the hardest grouping differs from the");
    println!("paper's (its real data made 8-attribute/many-small-groups the near-1x case);");
    println!("see EXPERIMENTS.md for the discussion.");
}
