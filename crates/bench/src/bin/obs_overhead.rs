//! Overhead contract of the observability layer (DESIGN.md §11), as an
//! enforcing benchmark: exits nonzero when the contract is broken, so CI
//! can run it directly.
//!
//! Two checks:
//!
//! 1. **Disabled dispatch** — with no recorder attached, the per-query
//!    cost of `RunContext::obs()` (the check every instrumentation site
//!    performs) must stay a handful of nanoseconds: it is one enum
//!    discriminant load. A generous bound catches anyone making the
//!    disabled path allocate, lock or format.
//! 2. **Enabled recording** — an NL run over the blocked kernel with a
//!    `TraceRecorder` attached must finish within `MAX_ENABLED_RATIO` of
//!    the same run without one. Recording happens per *group* pair while
//!    the work is per *record* pair, so the real ratio sits near 1.
//! 3. **Flight recorder** — the always-on bounded ring must cost at most
//!    `MAX_FLIGHT_RATIO` of the untraced run: each entry is one fixed-size
//!    copy into a preallocated ring (no allocation, no growth), so the
//!    bound is deliberately tight (5%).
//!
//! Writes the raw numbers to `BENCH_obs.json`.
//!
//! Usage: `obs_overhead [records] [repeats]` (defaults 20000, 5).

use aggsky_core::obs::{FlightRecorder, TraceRecorder};
use aggsky_core::{AlgoOptions, Algorithm, Gamma, KernelConfig, RunContext};
use aggsky_datagen::{Distribution, SyntheticConfig};
use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Upper bound on the disabled-recorder query, in ns per call. The real
/// cost is well under a nanosecond; 5 ns absorbs slow CI machines while
/// still failing on any accidental allocation or locking.
const MAX_NOOP_NS: f64 = 5.0;

/// Upper bound on traced-run wall time over untraced wall time.
const MAX_ENABLED_RATIO: f64 = 3.0;

/// Upper bound on flight-recorder-enabled wall time over untraced wall
/// time: the bounded ring is meant to stay attached in production, so its
/// budget is 5%, not the trace recorder's 3x.
const MAX_FLIGHT_RATIO: f64 = 1.05;

fn main() {
    let mut args = std::env::args().skip(1);
    let records: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let repeats: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(5).max(1);

    // ---- Check 1: disabled dispatch cost ----
    let ctx = RunContext::unlimited();
    let iters: u64 = 50_000_000;
    let mut noop_ns = f64::INFINITY;
    for _ in 0..repeats {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(black_box(&ctx).obs().is_some());
        }
        noop_ns = noop_ns.min(start.elapsed().as_secs_f64() * 1e9 / iters as f64);
    }
    println!("disabled-recorder query: {noop_ns:.3} ns/call (bound {MAX_NOOP_NS} ns)");

    // ---- Check 2: end-to-end enabled vs disabled ----
    let ds = SyntheticConfig {
        n_records: records,
        n_groups: 500,
        ..SyntheticConfig::paper_default(Distribution::Independent)
    }
    .generate();
    let opts =
        AlgoOptions { kernel: KernelConfig::blocked(), ..AlgoOptions::paper(Gamma::DEFAULT) };

    let mut t_off = f64::INFINITY;
    let mut t_on = f64::INFINITY;
    let mut t_flight = f64::INFINITY;
    let mut pairs = 0u64;
    for _ in 0..repeats {
        let start = Instant::now();
        let outcome = Algorithm::NestedLoop
            .run_ctx(&ds, opts, &RunContext::unlimited())
            .expect("valid kernel config");
        t_off = t_off.min(start.elapsed().as_secs_f64() * 1e3);
        pairs = outcome.stats().record_pairs;

        let rec = Arc::new(TraceRecorder::new());
        let traced = RunContext::unlimited().with_recorder(rec);
        let start = Instant::now();
        let _ = Algorithm::NestedLoop.run_ctx(&ds, opts, &traced);
        t_on = t_on.min(start.elapsed().as_secs_f64() * 1e3);

        let flight = Arc::new(FlightRecorder::new());
        let ringed = RunContext::unlimited().with_recorder(flight);
        let start = Instant::now();
        let _ = Algorithm::NestedLoop.run_ctx(&ds, opts, &ringed);
        t_flight = t_flight.min(start.elapsed().as_secs_f64() * 1e3);
    }
    let ratio = t_on / t_off;
    let flight_ratio = t_flight / t_off;
    let throughput = pairs as f64 / (t_off / 1e3);
    println!(
        "NL/blocked, {} records / {} groups: untraced {t_off:.1} ms ({throughput:.0} record pairs/s), \
         traced {t_on:.1} ms, ratio {ratio:.2}x (bound {MAX_ENABLED_RATIO}x)",
        ds.n_records(),
        ds.n_groups()
    );
    println!(
        "flight recorder attached: {t_flight:.1} ms, ratio {flight_ratio:.2}x \
         (bound {MAX_FLIGHT_RATIO}x)"
    );

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"noop_ns_per_query\": {noop_ns:.4},").unwrap();
    writeln!(json, "  \"noop_bound_ns\": {MAX_NOOP_NS},").unwrap();
    writeln!(json, "  \"untraced_millis\": {t_off:.3},").unwrap();
    writeln!(json, "  \"traced_millis\": {t_on:.3},").unwrap();
    writeln!(json, "  \"record_pairs\": {pairs},").unwrap();
    writeln!(json, "  \"record_pairs_per_sec_untraced\": {throughput:.0},").unwrap();
    writeln!(json, "  \"enabled_ratio\": {ratio:.3},").unwrap();
    writeln!(json, "  \"enabled_ratio_bound\": {MAX_ENABLED_RATIO},").unwrap();
    writeln!(json, "  \"flight_millis\": {t_flight:.3},").unwrap();
    writeln!(json, "  \"flight_ratio\": {flight_ratio:.3},").unwrap();
    writeln!(json, "  \"flight_ratio_bound\": {MAX_FLIGHT_RATIO}").unwrap();
    writeln!(json, "}}").unwrap();
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    println!("wrote BENCH_obs.json");

    let mut failed = false;
    if noop_ns > MAX_NOOP_NS {
        eprintln!("FAIL: disabled-recorder query costs {noop_ns:.3} ns > {MAX_NOOP_NS} ns");
        failed = true;
    }
    if ratio > MAX_ENABLED_RATIO {
        eprintln!("FAIL: traced run is {ratio:.2}x the untraced run (bound {MAX_ENABLED_RATIO}x)");
        failed = true;
    }
    if flight_ratio > MAX_FLIGHT_RATIO {
        eprintln!(
            "FAIL: flight-recorder run is {flight_ratio:.2}x the untraced run \
             (bound {MAX_FLIGHT_RATIO}x)"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("overhead contract holds");
}
