//! Table 2 and the running examples: prints the paper's director domination
//! probabilities (Table 2), the record skyline of the movie table
//! (Figure 2), the aggregate query (Figure 3), and the aggregate skyline
//! (Figure 4b), each computed from first principles.

use aggsky_bench::MarkdownTable;
use aggsky_core::{domination_probability, ranked_skyline, Algorithm, Gamma};
use aggsky_datagen::{figure5_directors, movie_table, movies_by_director};

fn main() {
    // ---- Table 2 ----
    println!("## Table 2 — p(S > R) on the reconstructed Figure 5 directors\n");
    let ds = figure5_directors();
    let pairs = [
        ("Tarantino", "Wiseau"),
        ("Tarantino", "Fleischer"),
        ("Tarantino", "Jackson"),
        ("Wiseau", "Tarantino"),
        ("Fleischer", "Tarantino"),
        ("Jackson", "Tarantino"),
    ];
    let paper = [1.00, 0.94, 0.68, 0.00, 0.06, 0.26];
    let mut table = MarkdownTable::new(vec!["S", "R", "p(S > R)", "paper"]);
    for ((s, r), expect) in pairs.iter().zip(paper) {
        let si = ds.group_by_label(s).expect("known director");
        let ri = ds.group_by_label(r).expect("known director");
        let p = domination_probability(&ds, si, ri);
        assert_eq!((p * 100.0).round() / 100.0, expect, "{s} vs {r}");
        table.push_row(vec![
            s.to_string(),
            r.to_string(),
            format!("{p:.4}"),
            format!("{expect:.2}"),
        ]);
    }
    table.print();

    // ---- Figure 2 ----
    println!("\n## Figure 2 — record skyline of the movie table\n");
    let movies = movie_table();
    let rows: Vec<f64> = movies.iter().flat_map(|m| [m.popularity, m.quality]).collect();
    let skyline = aggsky_core::record_skyline::bnl(&rows, 2);
    let mut table = MarkdownTable::new(vec!["title", "pop", "qual"]);
    for &i in &skyline {
        let m = &movies[i];
        table.push_row(vec![
            m.title.to_string(),
            format!("{}", m.popularity),
            format!("{}", m.quality),
        ]);
    }
    table.print();

    // ---- Figure 4(b) ----
    println!("\n## Figure 4(b) — aggregate skyline directors (gamma = 0.5)\n");
    let by_director = movies_by_director();
    let result = Algorithm::Indexed.run(&by_director, Gamma::DEFAULT);
    for label in by_director.sorted_labels(&result.skyline) {
        println!("- {label}");
    }

    // ---- min-gamma ranking (Section 2.2) ----
    println!("\n## Ranked aggregate skyline (groups by minimum qualifying gamma)\n");
    let mut table = MarkdownTable::new(vec!["director", "min gamma", "in skyline at 0.5"]);
    for rg in ranked_skyline(&by_director) {
        let in_at_half = !Gamma::DEFAULT.dominated(rg.min_gamma);
        table.push_row(vec![
            by_director.label(rg.group).to_string(),
            format!("{:.3}", rg.min_gamma.max(0.5)),
            if in_at_half { "yes".to_string() } else { "no".to_string() },
        ]);
    }
    table.print();
}
