//! # aggsky-bench
//!
//! Benchmark harnesses regenerating every table and figure of the paper's
//! experimental evaluation (Section 4). Each `bin/figNN_*` binary prints a
//! markdown table with one row per measured configuration; `bin/run_all`
//! chains them into a full report.
//!
//! Times are wall-clock milliseconds on the current machine; the paper's
//! absolute numbers came from different hardware, so what must match is the
//! *shape*: which algorithm wins, by what rough factor, and where the
//! crossovers are. Each measurement also reports hardware-independent work
//! counters (group pairs compared, record pairs checked).

#![warn(missing_docs)]

pub mod asciiplot;
pub mod report;
pub mod runner;
pub mod sql_baseline;

pub use asciiplot::{render, Series};
pub use report::MarkdownTable;
pub use runner::{measure, measure_all, Measurement};
pub use sql_baseline::{load_sql_baseline, ALGORITHM_1};
