//! Shared setup for the SQL-baseline benchmarks (Figure 8 and the
//! criterion variant): loading a grouped dataset into the engine's
//! `movies(director, votes, rank, num)` table and the Algorithm 1 query.

use aggsky_core::GroupedDataset;
use aggsky_sql::{ColumnType, Database, Value};

/// The paper's Algorithm 1, verbatim except for table/column names.
pub const ALGORITHM_1: &str = "select distinct director from movies where director not in (\
     select X.director from movies X, movies Y \
     where ((Y.votes > X.votes and Y.rank >= X.rank) or \
            (Y.votes >= X.votes and Y.rank > X.rank)) \
     group by X.director, Y.director \
     having 1.0*count(*)/(X.num*Y.num) > .5)";

/// Loads a 2-D grouped dataset into a fresh database as the
/// `movies(director, votes, rank, num)` table Algorithm 1 expects.
pub fn load_sql_baseline(ds: &GroupedDataset) -> Database {
    assert_eq!(ds.dim(), 2, "Algorithm 1 is the 2-attribute query");
    let mut db = Database::new();
    db.create_table(
        "movies",
        &[
            ("director", ColumnType::Text),
            ("votes", ColumnType::Float),
            ("rank", ColumnType::Float),
            ("num", ColumnType::Int),
        ],
    )
    .expect("fresh database");
    let mut rows = Vec::with_capacity(ds.n_records());
    for g in ds.group_ids() {
        let num = ds.group_len(g) as i64;
        for rec in ds.records(g) {
            rows.push(vec![
                Value::Str(ds.label(g).to_string()),
                Value::Float(rec[0]),
                Value::Float(rec[1]),
                Value::Int(num),
            ]);
        }
    }
    db.insert_rows("movies", rows).expect("bulk load");
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggsky_core::{naive_skyline, Gamma};
    use aggsky_datagen::{Distribution, SyntheticConfig};

    #[test]
    fn baseline_query_matches_core_oracle() {
        let ds = SyntheticConfig {
            n_records: 300,
            n_groups: 6,
            dim: 2,
            ..SyntheticConfig::paper_default(Distribution::Independent)
        }
        .generate();
        let mut db = load_sql_baseline(&ds);
        let mut sql: Vec<String> =
            db.execute(ALGORITHM_1).unwrap().rows.into_iter().map(|r| r[0].to_string()).collect();
        sql.sort();
        let oracle = naive_skyline(&ds, Gamma::DEFAULT);
        let mut core: Vec<String> =
            oracle.skyline.iter().map(|&g| ds.label(g).to_string()).collect();
        core.sort();
        assert_eq!(sql, core);
    }
}
