//! Dependency-free microbenchmarks, one section per paper figure (reduced
//! sizes so `cargo bench` completes quickly; the full-size sweeps live in
//! the `bin/figNN_*` harnesses).
//!
//! Each case is warmed up once and then timed over a fixed number of
//! iterations with `std::time::Instant`, reporting the per-iteration mean —
//! the in-repo [`aggsky_bench::runner`] philosophy (hardware-independent
//! work counters carry the precision; wall clock gives the rough shape)
//! applied at micro scale, with no external harness crate required.

use aggsky_core::{Algorithm, Gamma};
use aggsky_datagen::{
    generate_nba, nba_dataset, Distribution, GroupSizes, NbaGrouping, SyntheticConfig,
};
use std::time::Instant;

const BENCH_RECORDS: usize = 2_000;

/// Times `f` over `iters` iterations (after one warm-up call) and prints the
/// per-iteration mean under `group/name`.
fn bench<T>(group: &str, name: &str, iters: u32, mut f: impl FnMut() -> T) {
    let sink = f(); // warm-up; also keeps the closure's work observable
    std::hint::black_box(&sink);
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let per_iter = start.elapsed().as_secs_f64() * 1e3 / iters as f64;
    println!("{group}/{name}: {per_iter:.3} ms/iter ({iters} iters)");
}

fn bench_dataset(dist: Distribution, dim: usize, spread: f64) -> aggsky_core::GroupedDataset {
    SyntheticConfig {
        n_records: BENCH_RECORDS,
        n_groups: BENCH_RECORDS / 100,
        dim,
        spread,
        ..SyntheticConfig::paper_default(dist)
    }
    .generate()
}

/// Figure 8: the direct SQL baseline (scaled down) vs NL.
fn fig08_sql_baseline() {
    let n = 500;
    let ds = SyntheticConfig {
        n_records: n,
        n_groups: n / 100,
        dim: 2,
        ..SyntheticConfig::paper_default(Distribution::Independent)
    }
    .generate();
    let mut db = aggsky_bench::load_sql_baseline(&ds);
    bench("fig08_sql_baseline", "sql", 3, || db.execute(aggsky_bench::ALGORITHM_1).unwrap());
    bench("fig08_sql_baseline", "nl", 10, || Algorithm::NestedLoop.run(&ds, Gamma::DEFAULT));
}

/// Figures 10/12: all five algorithms across the three distributions.
fn fig10_12_algorithms() {
    for dist in Distribution::ALL {
        let ds = bench_dataset(dist, 5, 0.2);
        for algo in Algorithm::EVALUATED {
            bench(
                "fig10_12_algorithms",
                &format!("{}/{}", algo.short_name(), dist.label()),
                10,
                || algo.run(&ds, Gamma::DEFAULT),
            );
        }
    }
}

/// Figure 11: low vs high class overlap for IN and NL.
fn fig11_overlap() {
    for spread in [0.1, 0.6] {
        let ds = bench_dataset(Distribution::AntiCorrelated, 5, spread);
        for algo in [Algorithm::NestedLoop, Algorithm::Indexed, Algorithm::IndexedBbox] {
            bench("fig11_overlap", &format!("{}/spread{spread}", algo.short_name()), 10, || {
                algo.run(&ds, Gamma::DEFAULT)
            });
        }
    }
}

/// Figure 13(a): Zipfian class sizes, size-aware vs plain ordering.
fn fig13_zipf() {
    let ds = SyntheticConfig {
        n_records: BENCH_RECORDS,
        n_groups: BENCH_RECORDS / 100,
        group_sizes: GroupSizes::Zipf(1.0),
        ..SyntheticConfig::paper_default(Distribution::AntiCorrelated)
    }
    .generate();
    for algo in [Algorithm::NestedLoop, Algorithm::Sorted, Algorithm::Indexed] {
        bench("fig13_zipf", algo.short_name(), 10, || algo.run(&ds, Gamma::DEFAULT));
    }
}

/// Figure 14: the NBA stand-in at reduced size.
fn fig14_nba() {
    let records = generate_nba(3_000, 42);
    for grouping in [NbaGrouping::Team, NbaGrouping::Player] {
        let ds = nba_dataset(&records, grouping, 8);
        for algo in [Algorithm::NestedLoop, Algorithm::IndexedBbox] {
            bench("fig14_nba", &format!("{}/{}", algo.short_name(), grouping.label()), 10, || {
                algo.run(&ds, Gamma::DEFAULT)
            });
        }
    }
}

/// Substrate microbenches: R-tree window queries and record skylines.
fn substrates() {
    let pts = aggsky_datagen::ungrouped_records(10_000, 5, Distribution::Independent, 9);
    let tree = aggsky_spatial::RTree::bulk_load(
        5,
        pts.iter().enumerate().map(|(i, p)| (aggsky_spatial::Aabb::point(p), i)).collect(),
    );
    let mut i = 0usize;
    bench("substrates", "rtree_window_query", 2_000, || {
        let q = &pts[i % pts.len()];
        i += 1;
        tree.window_query(&aggsky_spatial::Aabb::at_least(q)).len()
    });
    let flat: Vec<f64> =
        aggsky_datagen::ungrouped_records(5_000, 5, Distribution::AntiCorrelated, 11)
            .into_iter()
            .flatten()
            .collect();
    bench("substrates", "record_skyline_bnl", 20, || {
        aggsky_core::record_skyline::bnl(&flat, 5).len()
    });
    bench("substrates", "record_skyline_sfs", 20, || {
        aggsky_core::record_skyline::sfs(&flat, 5).len()
    });
}

fn main() {
    fig08_sql_baseline();
    fig10_12_algorithms();
    fig11_overlap();
    fig13_zipf();
    fig14_nba();
    substrates();
}
