//! Criterion microbenchmarks, one group per paper figure (reduced sizes so
//! `cargo bench` completes quickly; the full-size sweeps live in the
//! `bin/figNN_*` harnesses).

use aggsky_core::{Algorithm, Gamma};
use aggsky_datagen::{
    generate_nba, nba_dataset, Distribution, GroupSizes, NbaGrouping, SyntheticConfig,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const BENCH_RECORDS: usize = 2_000;

fn bench_dataset(dist: Distribution, dim: usize, spread: f64) -> aggsky_core::GroupedDataset {
    SyntheticConfig {
        n_records: BENCH_RECORDS,
        n_groups: BENCH_RECORDS / 100,
        dim,
        spread,
        ..SyntheticConfig::paper_default(dist)
    }
    .generate()
}

/// Figure 8: the direct SQL baseline (scaled down) vs NL.
fn fig08_sql_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig08_sql_baseline");
    group.sample_size(10);
    let n = 500;
    let ds = SyntheticConfig {
        n_records: n,
        n_groups: n / 100,
        dim: 2,
        ..SyntheticConfig::paper_default(Distribution::Independent)
    }
    .generate();
    let mut db = aggsky_bench::load_sql_baseline(&ds);
    group.bench_function("sql", |b| b.iter(|| db.execute(aggsky_bench::ALGORITHM_1).unwrap()));
    group.bench_function("nl", |b| {
        b.iter(|| Algorithm::NestedLoop.run(&ds, Gamma::DEFAULT))
    });
    group.finish();
}

/// Figures 10/12: all five algorithms across the three distributions.
fn fig10_12_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_12_algorithms");
    group.sample_size(10);
    for dist in Distribution::ALL {
        let ds = bench_dataset(dist, 5, 0.2);
        for algo in Algorithm::EVALUATED {
            group.bench_with_input(
                BenchmarkId::new(algo.short_name(), dist.label()),
                &ds,
                |b, ds| b.iter(|| algo.run(ds, Gamma::DEFAULT)),
            );
        }
    }
    group.finish();
}

/// Figure 11: low vs high class overlap for IN and NL.
fn fig11_overlap(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_overlap");
    group.sample_size(10);
    for spread in [0.1, 0.6] {
        let ds = bench_dataset(Distribution::AntiCorrelated, 5, spread);
        for algo in [Algorithm::NestedLoop, Algorithm::Indexed, Algorithm::IndexedBbox] {
            group.bench_with_input(
                BenchmarkId::new(algo.short_name(), format!("spread{spread}")),
                &ds,
                |b, ds| b.iter(|| algo.run(ds, Gamma::DEFAULT)),
            );
        }
    }
    group.finish();
}

/// Figure 13(a): Zipfian class sizes, size-aware vs plain ordering.
fn fig13_zipf(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_zipf");
    group.sample_size(10);
    let ds = SyntheticConfig {
        n_records: BENCH_RECORDS,
        n_groups: BENCH_RECORDS / 100,
        group_sizes: GroupSizes::Zipf(1.0),
        ..SyntheticConfig::paper_default(Distribution::AntiCorrelated)
    }
    .generate();
    for algo in [Algorithm::NestedLoop, Algorithm::Sorted, Algorithm::Indexed] {
        group.bench_with_input(BenchmarkId::from_parameter(algo.short_name()), &ds, |b, ds| {
            b.iter(|| algo.run(ds, Gamma::DEFAULT))
        });
    }
    group.finish();
}

/// Figure 14: the NBA stand-in at reduced size.
fn fig14_nba(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_nba");
    group.sample_size(10);
    let records = generate_nba(3_000, 42);
    for grouping in [NbaGrouping::Team, NbaGrouping::Player] {
        let ds = nba_dataset(&records, grouping, 8);
        for algo in [Algorithm::NestedLoop, Algorithm::IndexedBbox] {
            group.bench_with_input(
                BenchmarkId::new(algo.short_name(), grouping.label()),
                &ds,
                |b, ds| b.iter(|| algo.run(ds, Gamma::DEFAULT)),
            );
        }
    }
    group.finish();
}

/// Substrate microbenches: R-tree window queries and record skylines.
fn substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates");
    group.sample_size(20);
    let pts = aggsky_datagen::ungrouped_records(10_000, 5, Distribution::Independent, 9);
    let tree = aggsky_spatial::RTree::bulk_load(
        5,
        pts.iter().enumerate().map(|(i, p)| (aggsky_spatial::Aabb::point(p), i)).collect(),
    );
    group.bench_function("rtree_window_query", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = &pts[i % pts.len()];
            i += 1;
            tree.window_query(&aggsky_spatial::Aabb::at_least(q)).len()
        })
    });
    let flat: Vec<f64> =
        aggsky_datagen::ungrouped_records(5_000, 5, Distribution::AntiCorrelated, 11)
            .into_iter()
            .flatten()
            .collect();
    group.bench_function("record_skyline_bnl", |b| {
        b.iter(|| aggsky_core::record_skyline::bnl(&flat, 5).len())
    });
    group.bench_function("record_skyline_sfs", |b| {
        b.iter(|| aggsky_core::record_skyline::sfs(&flat, 5).len())
    });
    group.finish();
}

criterion_group!(
    benches,
    fig08_sql_baseline,
    fig10_12_algorithms,
    fig11_overlap,
    fig13_zipf,
    fig14_nba,
    substrates
);
criterion_main!(benches);
