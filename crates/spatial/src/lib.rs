//! # aggsky-spatial
//!
//! A small, dependency-free d-dimensional R-tree built as the spatial-index
//! substrate for the aggregate-skyline algorithms of the companion
//! `aggsky-core` crate (Algorithm 5 of *"From Stars to Galaxies: skyline
//! queries on aggregate data"*, EDBT 2013).
//!
//! The tree supports:
//!
//! * incremental insertion with Guttman's quadratic split,
//! * sort-tile-recurse (STR) bulk loading,
//! * window (range) queries over arbitrary axis-aligned boxes, including
//!   half-open "dominating" windows built with [`Aabb::at_least`].
//!
//! ```
//! use aggsky_spatial::{Aabb, RTree};
//!
//! let mut tree = RTree::new(2);
//! tree.insert_point(&[1.0, 2.0], "a");
//! tree.insert_point(&[4.0, 0.5], "b");
//! // Everything coordinate-wise >= (0.9, 1.0): only "a".
//! assert_eq!(tree.window_query(&Aabb::at_least(&[0.9, 1.0])), vec!["a"]);
//! ```

#![warn(missing_docs)]

mod aabb;
mod knn;
mod ord;
mod rtree;

pub use aabb::Aabb;
pub use knn::Neighbor;
pub use rtree::RTree;
