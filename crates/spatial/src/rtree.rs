//! A d-dimensional R-tree with quadratic-split insertion and STR bulk
//! loading.
//!
//! The tree stores arbitrary boxes (degenerate point boxes included) with a
//! copyable payload. The aggregate-skyline index stores each group's MBB
//! maximum corner with the group id as payload and answers the Algorithm 5
//! window query "which groups could dominate `g.min`".

use crate::aabb::Aabb;

/// Maximum number of entries per node before a split.
const MAX_ENTRIES: usize = 16;
/// Minimum number of entries kept on each side of a split.
const MIN_ENTRIES: usize = 6;

#[derive(Debug, Clone)]
pub(crate) enum Node<T> {
    Leaf(Vec<(Aabb, T)>),
    Internal(Vec<(Aabb, Node<T>)>),
}

impl<T: Copy> Node<T> {
    fn mbr(&self) -> Aabb {
        fn cover<'a>(boxes: impl Iterator<Item = &'a Aabb>) -> Aabb {
            // Nodes are never constructed empty; folding keeps that
            // assumption out of the panic surface.
            boxes
                .fold(None::<Aabb>, |acc, b| match acc {
                    None => Some(b.clone()),
                    Some(mut mbr) => {
                        mbr.merge(b);
                        Some(mbr)
                    }
                })
                .unwrap_or_else(|| Aabb::point(&[0.0]))
        }
        match self {
            Node::Leaf(entries) => cover(entries.iter().map(|(b, _)| b)),
            Node::Internal(children) => cover(children.iter().map(|(b, _)| b)),
        }
    }
}

/// An R-tree over `dim`-dimensional boxes with payloads of type `T`.
#[derive(Debug, Clone)]
pub struct RTree<T> {
    dim: usize,
    root: Option<Node<T>>,
    len: usize,
    height: usize,
}

impl<T: Copy> RTree<T> {
    /// Creates an empty tree for `dim`-dimensional data.
    pub fn new(dim: usize) -> RTree<T> {
        assert!(dim > 0, "dimension must be positive");
        RTree { dim, root: None, len: 0, height: 0 }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (0 when empty, 1 for a single leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Root node (crate-internal; used by the kNN search).
    pub(crate) fn root(&self) -> Option<&Node<T>> {
        self.root.as_ref()
    }

    /// Dimensionality of the tree.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Inserts one box with its payload.
    pub fn insert(&mut self, bbox: Aabb, payload: T) {
        assert_eq!(bbox.dim(), self.dim, "box dimensionality mismatch");
        self.len += 1;
        match self.root.take() {
            None => {
                self.root = Some(Node::Leaf(vec![(bbox, payload)]));
                self.height = 1;
            }
            Some(mut root) => {
                if let Some((split_box, split_node)) = insert_rec(&mut root, bbox, payload) {
                    // Root split: grow the tree by one level.
                    let old_mbr = root.mbr();
                    self.root =
                        Some(Node::Internal(vec![(old_mbr, root), (split_box, split_node)]));
                    self.height += 1;
                } else {
                    self.root = Some(root);
                }
            }
        }
    }

    /// Inserts a degenerate point box.
    pub fn insert_point(&mut self, point: &[f64], payload: T) {
        self.insert(Aabb::point(point), payload);
    }

    /// Bulk loads a tree from `(box, payload)` pairs using sort-tile-recurse
    /// packing; faster and better-packed than repeated insertion.
    pub fn bulk_load(dim: usize, items: Vec<(Aabb, T)>) -> RTree<T> {
        assert!(dim > 0, "dimension must be positive");
        for (b, _) in &items {
            assert_eq!(b.dim(), dim, "box dimensionality mismatch");
        }
        let len = items.len();
        if len == 0 {
            return RTree::new(dim);
        }
        let mut level: Vec<Node<T>> =
            str_partition(items, dim, 0, MAX_ENTRIES).into_iter().map(Node::Leaf).collect();
        let mut height = 1;
        while level.len() > 1 {
            let parents: Vec<(Aabb, Node<T>)> = level.into_iter().map(|n| (n.mbr(), n)).collect();
            level = str_partition(parents, dim, 0, MAX_ENTRIES)
                .into_iter()
                .map(Node::Internal)
                .collect();
            height += 1;
        }
        RTree { dim, root: level.pop(), len, height }
    }

    /// Returns the payloads of every entry whose box intersects `window`.
    pub fn window_query(&self, window: &Aabb) -> Vec<T> {
        let mut out = Vec::new();
        self.window_query_into(window, &mut out);
        out
    }

    /// Window query writing into a caller-provided buffer (cleared first),
    /// so hot loops can reuse the allocation.
    pub fn window_query_into(&self, window: &Aabb, out: &mut Vec<T>) {
        assert_eq!(window.dim(), self.dim, "window dimensionality mismatch");
        out.clear();
        if let Some(root) = &self.root {
            query_rec(root, window, out);
        }
    }

    /// Visits every entry whose box intersects `window`; the visitor returns
    /// `false` to stop the traversal early.
    pub fn window_query_visit(&self, window: &Aabb, visitor: &mut impl FnMut(T) -> bool) {
        if let Some(root) = &self.root {
            query_visit_rec(root, window, visitor);
        }
    }
}

fn query_rec<T: Copy>(node: &Node<T>, window: &Aabb, out: &mut Vec<T>) {
    match node {
        Node::Leaf(entries) => {
            for (b, payload) in entries {
                if window.intersects(b) {
                    out.push(*payload);
                }
            }
        }
        Node::Internal(children) => {
            for (b, child) in children {
                if window.intersects(b) {
                    query_rec(child, window, out);
                }
            }
        }
    }
}

fn query_visit_rec<T: Copy>(
    node: &Node<T>,
    window: &Aabb,
    visitor: &mut impl FnMut(T) -> bool,
) -> bool {
    match node {
        Node::Leaf(entries) => {
            for (b, payload) in entries {
                if window.intersects(b) && !visitor(*payload) {
                    return false;
                }
            }
        }
        Node::Internal(children) => {
            for (b, child) in children {
                if window.intersects(b) && !query_visit_rec(child, window, visitor) {
                    return false;
                }
            }
        }
    }
    true
}

/// Recursive insertion; returns the new sibling when the child splits.
fn insert_rec<T: Copy>(node: &mut Node<T>, bbox: Aabb, payload: T) -> Option<(Aabb, Node<T>)> {
    match node {
        Node::Leaf(entries) => {
            entries.push((bbox, payload));
            if entries.len() > MAX_ENTRIES {
                let (left, right) = quadratic_split(std::mem::take(entries));
                *entries = left;
                let right_node = Node::Leaf(right);
                let right_mbr = right_node.mbr();
                Some((right_mbr, right_node))
            } else {
                None
            }
        }
        Node::Internal(children) => {
            // ChooseSubtree: least margin enlargement, ties by smaller margin.
            let mut best = 0;
            let mut best_enl = f64::INFINITY;
            let mut best_margin = f64::INFINITY;
            for (i, (b, _)) in children.iter().enumerate() {
                let enl = b.enlargement(&bbox);
                let margin = b.margin();
                if enl < best_enl || (enl == best_enl && margin < best_margin) {
                    best = i;
                    best_enl = enl;
                    best_margin = margin;
                }
            }
            children[best].0.merge(&bbox);
            let split = insert_rec(&mut children[best].1, bbox, payload);
            if split.is_some() {
                // A split redistributed the child's entries: recompute its
                // MBR exactly instead of keeping the merged over-estimate.
                children[best].0 = children[best].1.mbr();
            }
            if let Some(sibling) = split {
                children.push(sibling);
                if children.len() > MAX_ENTRIES {
                    let (left, right) = quadratic_split(std::mem::take(children));
                    *children = left;
                    let right_node = Node::Internal(right);
                    let right_mbr = right_node.mbr();
                    return Some((right_mbr, right_node));
                }
            }
            None
        }
    }
}

/// Guttman's quadratic split over `(Aabb, E)` entries.
type SplitHalves<E> = (Vec<(Aabb, E)>, Vec<(Aabb, E)>);

fn quadratic_split<E>(entries: Vec<(Aabb, E)>) -> SplitHalves<E> {
    debug_assert!(entries.len() > MAX_ENTRIES);
    // Pick the two seeds wasting the most space when paired.
    let mut seed_a = 0;
    let mut seed_b = 1;
    let mut worst = f64::NEG_INFINITY;
    for i in 0..entries.len() {
        for j in (i + 1)..entries.len() {
            let waste = entries[i].0.merged(&entries[j].0).margin()
                - entries[i].0.margin()
                - entries[j].0.margin();
            if waste > worst {
                worst = waste;
                seed_a = i;
                seed_b = j;
            }
        }
    }
    let total = entries.len();
    let mut left: Vec<(Aabb, E)> = Vec::with_capacity(total);
    let mut right: Vec<(Aabb, E)> = Vec::with_capacity(total);
    let mut left_mbr: Option<Aabb> = None;
    let mut right_mbr: Option<Aabb> = None;
    for (idx, entry) in entries.into_iter().enumerate() {
        let to_left = if idx == seed_a {
            true
        } else if idx == seed_b {
            false
        } else {
            let remaining = total - idx;
            // Force-assign when one side must take everything left to reach
            // the minimum fill factor.
            if left.len() + remaining <= MIN_ENTRIES {
                true
            } else if right.len() + remaining <= MIN_ENTRIES {
                false
            } else {
                let el = left_mbr.as_ref().map_or(0.0, |m| m.enlargement(&entry.0));
                let er = right_mbr.as_ref().map_or(0.0, |m| m.enlargement(&entry.0));
                el <= er
            }
        };
        if to_left {
            match &mut left_mbr {
                Some(m) => m.merge(&entry.0),
                None => left_mbr = Some(entry.0.clone()),
            }
            left.push(entry);
        } else {
            match &mut right_mbr {
                Some(m) => m.merge(&entry.0),
                None => right_mbr = Some(entry.0.clone()),
            }
            right.push(entry);
        }
    }
    (left, right)
}

/// Sort-tile-recurse partitioning: splits `items` into chunks of at most
/// `cap` entries, tiling one axis at a time by box center.
fn str_partition<E>(
    items: Vec<(Aabb, E)>,
    dim: usize,
    axis: usize,
    cap: usize,
) -> Vec<Vec<(Aabb, E)>> {
    let n = items.len();
    if n <= cap {
        return vec![items];
    }
    let n_chunks = n.div_ceil(cap);
    let remaining_axes = dim - axis;
    let slab_count = if remaining_axes <= 1 {
        n_chunks
    } else {
        ((n_chunks as f64).powf(1.0 / remaining_axes as f64).ceil() as usize).max(2)
    };
    let mut items = items;
    items.sort_by(|a, b| a.0.center_at(axis).total_cmp(&b.0.center_at(axis)));
    let slab_size = n.div_ceil(slab_count).max(1);
    let next_axis = if axis + 1 < dim { axis + 1 } else { axis };
    let mut out = Vec::with_capacity(n_chunks);
    let mut rest = items;
    while !rest.is_empty() {
        let take = slab_size.min(rest.len());
        let tail = rest.split_off(take);
        let slab = std::mem::replace(&mut rest, tail);
        if slab.len() <= cap {
            out.push(slab);
        } else {
            // Guaranteed progress: slab_size < n because slab_count >= 2.
            out.extend(str_partition(slab, dim, next_axis, cap));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed.max(1);
        move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    fn random_points(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut next = lcg(seed);
        (0..n).map(|_| (0..dim).map(|_| next()).collect()).collect()
    }

    fn linear_scan(points: &[Vec<f64>], window: &Aabb) -> Vec<usize> {
        let mut out: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| window.contains_point(p))
            .map(|(i, _)| i)
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn empty_tree_answers_empty() {
        let t: RTree<usize> = RTree::new(3);
        assert!(t.is_empty());
        assert_eq!(t.window_query(&Aabb::at_least(&[0.0, 0.0, 0.0])), Vec::<usize>::new());
    }

    #[test]
    fn insert_and_query_matches_linear_scan() {
        for dim in [2usize, 3, 5] {
            let points = random_points(500, dim, 42 + dim as u64);
            let mut tree = RTree::new(dim);
            for (i, p) in points.iter().enumerate() {
                tree.insert_point(p, i);
            }
            assert_eq!(tree.len(), 500);
            let mut next = lcg(7);
            for _ in 0..50 {
                let lo: Vec<f64> = (0..dim).map(|_| next() * 0.8).collect();
                let hi: Vec<f64> = lo.iter().map(|&l| l + 0.3).collect();
                let window = Aabb::new(lo, hi);
                let mut got = tree.window_query(&window);
                got.sort_unstable();
                assert_eq!(got, linear_scan(&points, &window), "dim={dim}");
            }
        }
    }

    #[test]
    fn bulk_load_matches_linear_scan() {
        for dim in [2usize, 4] {
            let points = random_points(2000, dim, 99);
            let items: Vec<(Aabb, usize)> =
                points.iter().enumerate().map(|(i, p)| (Aabb::point(p), i)).collect();
            let tree = RTree::bulk_load(dim, items);
            assert_eq!(tree.len(), 2000);
            let mut next = lcg(5);
            for _ in 0..50 {
                let lo: Vec<f64> = (0..dim).map(|_| next() * 0.9).collect();
                let window = Aabb::at_least(&lo);
                let mut got = tree.window_query(&window);
                got.sort_unstable();
                assert_eq!(got, linear_scan(&points, &window), "dim={dim}");
            }
        }
    }

    #[test]
    fn bulk_load_is_shallow() {
        let points = random_points(10_000, 2, 3);
        let items: Vec<(Aabb, usize)> =
            points.iter().enumerate().map(|(i, p)| (Aabb::point(p), i)).collect();
        let tree = RTree::bulk_load(2, items);
        // ceil(log_16(10000/16)) + 1 levels: stays small.
        assert!(tree.height() <= 4, "height {}", tree.height());
    }

    #[test]
    fn at_least_window_returns_dominating_candidates() {
        let mut tree = RTree::new(2);
        tree.insert_point(&[1.0, 1.0], 0usize);
        tree.insert_point(&[5.0, 5.0], 1usize);
        tree.insert_point(&[0.5, 9.0], 2usize);
        let mut got = tree.window_query(&Aabb::at_least(&[1.0, 1.0]));
        got.sort_unstable();
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    fn visitor_early_exit() {
        let mut tree = RTree::new(1);
        for i in 0..100 {
            tree.insert_point(&[i as f64], i);
        }
        let mut seen = 0;
        tree.window_query_visit(&Aabb::at_least(&[0.0]), &mut |_| {
            seen += 1;
            seen < 10
        });
        assert_eq!(seen, 10);
    }

    #[test]
    fn boxes_not_just_points() {
        let mut tree = RTree::new(2);
        tree.insert(Aabb::new(vec![0.0, 0.0], vec![2.0, 2.0]), 0usize);
        tree.insert(Aabb::new(vec![5.0, 5.0], vec![6.0, 6.0]), 1usize);
        let got = tree.window_query(&Aabb::new(vec![1.0, 1.0], vec![1.5, 1.5]));
        assert_eq!(got, vec![0]);
    }

    #[test]
    fn incremental_and_bulk_agree() {
        let points = random_points(800, 3, 123);
        let mut inc = RTree::new(3);
        for (i, p) in points.iter().enumerate() {
            inc.insert_point(p, i);
        }
        let bulk = RTree::bulk_load(
            3,
            points.iter().enumerate().map(|(i, p)| (Aabb::point(p), i)).collect(),
        );
        let mut next = lcg(77);
        for _ in 0..30 {
            let lo: Vec<f64> = (0..3).map(|_| next()).collect();
            let window = Aabb::at_least(&lo);
            let mut a = inc.window_query(&window);
            let mut b = bulk.window_query(&window);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }
}
