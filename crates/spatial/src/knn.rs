//! Best-first k-nearest-neighbor search over the R-tree.

use crate::aabb::Aabb;
use crate::rtree::{Node, RTree};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A neighbor returned by [`RTree::nearest_neighbors`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor<T> {
    /// Payload of the entry.
    pub payload: T,
    /// Squared Euclidean distance from the query point to the entry's box.
    pub dist_sq: f64,
}

/// Heap entry: either an internal node or a leaf entry, ordered by
/// ascending distance (min-heap via reversed comparison).
enum Item<'a, T> {
    Node(&'a Node<T>, f64),
    Entry(T, f64),
}

impl<T> Item<'_, T> {
    fn dist(&self) -> f64 {
        match self {
            Item::Node(_, d) | Item::Entry(_, d) => *d,
        }
    }
}

impl<T> PartialEq for Item<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        crate::ord::eq(self.dist(), other.dist())
    }
}
impl<T> Eq for Item<'_, T> {}
impl<T> PartialOrd for Item<'_, T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Item<'_, T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on distance; ties are fine either way.
        other.dist().total_cmp(&self.dist())
    }
}

/// Squared distance from a point to the nearest point of a box.
fn dist_sq_to_box(p: &[f64], b: &Aabb) -> f64 {
    let mut acc = 0.0;
    for ((&v, &lo), &hi) in p.iter().zip(b.lo()).zip(b.hi()) {
        let delta = if crate::ord::lt(v, lo) {
            lo - v
        } else if crate::ord::gt(v, hi) && hi.is_finite() {
            v - hi
        } else {
            0.0
        };
        acc += delta * delta;
    }
    acc
}

impl<T: Copy> RTree<T> {
    /// Returns the `k` entries nearest to `point` (ascending distance,
    /// ties broken arbitrarily), using best-first branch-and-bound search.
    pub fn nearest_neighbors(&self, point: &[f64], k: usize) -> Vec<Neighbor<T>> {
        assert_eq!(point.len(), self.dim(), "query dimensionality mismatch");
        let mut out = Vec::with_capacity(k.min(self.len()));
        if k == 0 {
            return out;
        }
        let Some(root) = self.root() else {
            return out;
        };
        let mut heap: BinaryHeap<Item<'_, T>> = BinaryHeap::new();
        heap.push(Item::Node(root, 0.0));
        while let Some(item) = heap.pop() {
            match item {
                Item::Entry(payload, dist_sq) => {
                    out.push(Neighbor { payload, dist_sq });
                    if out.len() == k {
                        break;
                    }
                }
                Item::Node(node, _) => match node {
                    Node::Leaf(entries) => {
                        for (b, payload) in entries {
                            heap.push(Item::Entry(*payload, dist_sq_to_box(point, b)));
                        }
                    }
                    Node::Internal(children) => {
                        for (b, child) in children {
                            heap.push(Item::Node(child, dist_sq_to_box(point, b)));
                        }
                    }
                },
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed.max(1);
        move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    #[test]
    fn knn_matches_linear_scan() {
        let mut next = lcg(31);
        for dim in [2usize, 4] {
            let points: Vec<Vec<f64>> =
                (0..400).map(|_| (0..dim).map(|_| next()).collect()).collect();
            let mut tree = RTree::new(dim);
            for (i, p) in points.iter().enumerate() {
                tree.insert_point(p, i);
            }
            for _ in 0..20 {
                let q: Vec<f64> = (0..dim).map(|_| next()).collect();
                let got = tree.nearest_neighbors(&q, 5);
                let mut expect: Vec<(usize, f64)> =
                    points.iter().enumerate().map(|(i, p)| (i, dist_sq(&q, p))).collect();
                expect.sort_by(|a, b| a.1.total_cmp(&b.1));
                assert_eq!(got.len(), 5);
                for (n, (_, d)) in got.iter().zip(expect.iter()) {
                    assert!((n.dist_sq - d).abs() < 1e-12, "distance order mismatch");
                }
            }
        }
    }

    #[test]
    fn knn_edge_cases() {
        let mut tree: RTree<u32> = RTree::new(2);
        assert!(tree.nearest_neighbors(&[0.0, 0.0], 3).is_empty());
        tree.insert_point(&[1.0, 1.0], 7);
        assert!(tree.nearest_neighbors(&[0.0, 0.0], 0).is_empty());
        let one = tree.nearest_neighbors(&[0.0, 0.0], 5);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].payload, 7);
        assert!((one[0].dist_sq - 2.0).abs() < 1e-12);
    }

    #[test]
    fn knn_distances_are_nondecreasing() {
        let mut next = lcg(77);
        let mut tree = RTree::new(3);
        for i in 0..500usize {
            let p: Vec<f64> = (0..3).map(|_| next()).collect();
            tree.insert_point(&p, i);
        }
        let res = tree.nearest_neighbors(&[0.5, 0.5, 0.5], 50);
        for w in res.windows(2) {
            assert!(w[0].dist_sq <= w[1].dist_sq + 1e-15);
        }
    }
}
