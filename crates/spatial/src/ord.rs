//! Total-order float comparisons — a minimal mirror of `aggsky_core::ord`.
//!
//! The workspace layering rule (lint rule L4) keeps this crate free of
//! internal dependencies (`aggsky-core` depends on *us*), so the sanctioned
//! comparators cannot be imported and are mirrored here with identical
//! semantics: `total_cmp` over zero-normalized values, so `-0.0 == +0.0`
//! and every comparison agrees with IEEE `<`/`>` on non-NaN inputs while
//! staying deterministic on NaN.

use std::cmp::Ordering;

/// Maps `-0.0` to `+0.0` (the IEEE sum `-0.0 + 0.0` is `+0.0`); all other
/// values, including NaN and the infinities, are unchanged.
#[inline(always)]
fn canon(x: f64) -> f64 {
    x + 0.0
}

/// Total ordering: `total_cmp` over zero-normalized values.
#[inline(always)]
pub(crate) fn cmp(a: f64, b: f64) -> Ordering {
    canon(a).total_cmp(&canon(b))
}

/// Total `a < b`.
#[inline(always)]
pub(crate) fn lt(a: f64, b: f64) -> bool {
    cmp(a, b) == Ordering::Less
}

/// Total `a <= b`.
#[inline(always)]
pub(crate) fn le(a: f64, b: f64) -> bool {
    cmp(a, b) != Ordering::Greater
}

/// Total `a > b`.
#[inline(always)]
pub(crate) fn gt(a: f64, b: f64) -> bool {
    cmp(a, b) == Ordering::Greater
}

/// Total `a == b` (NaN of equal sign compares equal, so heap/dedup
/// structures keyed on distances stay coherent).
#[inline(always)]
pub(crate) fn eq(a: f64, b: f64) -> bool {
    cmp(a, b) == Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirrors_ieee_on_ordinary_values() {
        let vals = [-2.0, -0.0, 0.0, 1.5, f64::INFINITY];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(lt(a, b), a < b, "lt({a}, {b})");
                assert_eq!(le(a, b), a <= b, "le({a}, {b})");
                assert_eq!(gt(a, b), a > b, "gt({a}, {b})");
                assert_eq!(eq(a, b), a == b, "eq({a}, {b})");
            }
        }
        assert!(eq(f64::NAN, f64::NAN));
    }
}
