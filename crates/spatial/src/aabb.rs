//! Axis-aligned bounding boxes in `d` dimensions.

/// An axis-aligned box `[lo, hi]` (inclusive on both ends) in `d` dimensions.
///
/// Degenerate boxes (points) are allowed and are how the aggregate-skyline
/// index stores group MBB corners. Half-open windows are expressed with
/// `f64::INFINITY` bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct Aabb {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl Aabb {
    /// Creates a box from its corners. Panics if the corners disagree in
    /// dimensionality or are inverted in some dimension.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Aabb {
        assert_eq!(lo.len(), hi.len(), "corner dimensionality mismatch");
        assert!(!lo.is_empty(), "zero-dimensional box");
        for (d, (&l, &h)) in lo.iter().zip(hi.iter()).enumerate() {
            assert!(crate::ord::le(l, h), "inverted box in dimension {d}: {l} > {h}");
            assert!(!l.is_nan() && !h.is_nan(), "NaN bound in dimension {d}");
        }
        Aabb { lo, hi }
    }

    /// A degenerate box covering exactly one point.
    pub fn point(p: &[f64]) -> Aabb {
        Aabb::new(p.to_vec(), p.to_vec())
    }

    /// The window `[lo, +∞)` in every dimension: everything that is
    /// coordinate-wise at least `lo`. This is the "space dominating `g.min`"
    /// query of Algorithm 5.
    pub fn at_least(lo: &[f64]) -> Aabb {
        Aabb::new(lo.to_vec(), vec![f64::INFINITY; lo.len()])
    }

    /// Dimensionality of the box.
    #[inline]
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Lower corner.
    #[inline]
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper corner.
    #[inline]
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// True iff the boxes share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Aabb) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        self.lo.iter().zip(other.hi.iter()).all(|(&l, &h)| crate::ord::le(l, h))
            && other.lo.iter().zip(self.hi.iter()).all(|(&l, &h)| crate::ord::le(l, h))
    }

    /// True iff `p` lies inside the box (boundaries included).
    #[inline]
    pub fn contains_point(&self, p: &[f64]) -> bool {
        debug_assert_eq!(self.dim(), p.len());
        self.lo.iter().zip(p.iter()).all(|(&l, &v)| crate::ord::le(l, v))
            && self.hi.iter().zip(p.iter()).all(|(&h, &v)| crate::ord::le(v, h))
    }

    /// True iff `other` lies entirely inside `self`.
    pub fn contains_box(&self, other: &Aabb) -> bool {
        self.lo.iter().zip(other.lo.iter()).all(|(&a, &b)| crate::ord::le(a, b))
            && self.hi.iter().zip(other.hi.iter()).all(|(&a, &b)| crate::ord::le(b, a))
    }

    /// Grows the box (in place) to cover `other`.
    pub fn merge(&mut self, other: &Aabb) {
        for d in 0..self.dim() {
            if crate::ord::lt(other.lo[d], self.lo[d]) {
                self.lo[d] = other.lo[d];
            }
            if crate::ord::gt(other.hi[d], self.hi[d]) {
                self.hi[d] = other.hi[d];
            }
        }
    }

    /// The smallest box covering both inputs.
    pub fn merged(&self, other: &Aabb) -> Aabb {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// Sum of side lengths (the "margin"); cheaper than volume and immune to
    /// zero-volume degenerate boxes, so the tree uses it for split decisions.
    pub fn margin(&self) -> f64 {
        self.lo.iter().zip(self.hi.iter()).map(|(&l, &h)| h - l).sum()
    }

    /// How much the margin would grow if `other` were merged in.
    pub fn enlargement(&self, other: &Aabb) -> f64 {
        self.merged(other).margin() - self.margin()
    }

    /// Center coordinate along one axis (used by bulk loading); infinite
    /// upper bounds fall back to the lower bound.
    #[inline]
    pub fn center_at(&self, axis: usize) -> f64 {
        if self.hi[axis].is_infinite() {
            self.lo[axis]
        } else {
            (self.lo[axis] + self.hi[axis]) * 0.5
        }
    }

    /// Center point of the box (used by bulk loading).
    pub fn center(&self) -> Vec<f64> {
        self.lo
            .iter()
            .zip(self.hi.iter())
            .map(|(&l, &h)| if h.is_infinite() { l } else { (l + h) * 0.5 })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersection_is_symmetric_and_touch_counts() {
        let a = Aabb::new(vec![0.0, 0.0], vec![2.0, 2.0]);
        let b = Aabb::new(vec![2.0, 2.0], vec![3.0, 3.0]);
        let c = Aabb::new(vec![2.1, 0.0], vec![3.0, 1.0]);
        assert!(a.intersects(&b) && b.intersects(&a), "touching boxes intersect");
        assert!(!a.intersects(&c) && !c.intersects(&a));
    }

    #[test]
    fn at_least_window_matches_dominating_halfspace() {
        let w = Aabb::at_least(&[1.0, 2.0]);
        assert!(w.contains_point(&[1.0, 2.0]));
        assert!(w.contains_point(&[100.0, 100.0]));
        assert!(!w.contains_point(&[0.9, 100.0]));
    }

    #[test]
    fn merge_covers_both() {
        let mut a = Aabb::new(vec![0.0, 5.0], vec![1.0, 6.0]);
        let b = Aabb::new(vec![-1.0, 7.0], vec![0.5, 8.0]);
        a.merge(&b);
        assert_eq!(a, Aabb::new(vec![-1.0, 5.0], vec![1.0, 8.0]));
        assert!(a.contains_box(&b));
    }

    #[test]
    fn enlargement_is_zero_for_contained_boxes() {
        let a = Aabb::new(vec![0.0, 0.0], vec![10.0, 10.0]);
        let b = Aabb::new(vec![1.0, 1.0], vec![2.0, 2.0]);
        assert_eq!(a.enlargement(&b), 0.0);
        assert!(b.enlargement(&a) > 0.0);
    }

    #[test]
    #[should_panic(expected = "inverted box")]
    fn rejects_inverted_bounds() {
        let _ = Aabb::new(vec![1.0], vec![0.0]);
    }

    #[test]
    fn margin_and_center() {
        let a = Aabb::new(vec![0.0, 0.0], vec![2.0, 4.0]);
        assert_eq!(a.margin(), 6.0);
        assert_eq!(a.center(), vec![1.0, 2.0]);
    }
}
