//! Machine-readable JSON report, hand-rolled like everything else in this
//! workspace (no serde).

use crate::allowlist::Entry;
use crate::rules::Finding;

/// Outcome of a full analysis run.
#[derive(Debug)]
pub struct Report {
    /// Findings not covered by the allowlist (these fail the run).
    pub active: Vec<Finding>,
    /// Findings suppressed by allowlist entries.
    pub suppressed: Vec<Finding>,
    /// Allowlist entries that matched nothing.
    pub stale: Vec<Entry>,
    /// Number of files analyzed.
    pub files: usize,
}

impl Report {
    /// Exit status the CLI should report: success iff nothing is active
    /// *and* no allowlist entry is stale. A stale entry means a pinned site
    /// moved or was fixed without the allowlist following — left to drift,
    /// line-pinned justifications (L7/L8) silently stop covering the lines
    /// they argue about, so staleness fails the run just like a finding.
    pub fn is_clean(&self) -> bool {
        self.active.is_empty() && self.stale.is_empty()
    }

    /// Serializes the report as a stable, pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"files_analyzed\": {},\n", self.files));
        out.push_str(&format!("  \"active_count\": {},\n", self.active.len()));
        out.push_str(&format!("  \"suppressed_count\": {},\n", self.suppressed.len()));
        out.push_str(&format!("  \"stale_allowlist_count\": {},\n", self.stale.len()));
        out.push_str("  \"findings\": [");
        json_findings(&mut out, &self.active);
        out.push_str("],\n  \"suppressed\": [");
        json_findings(&mut out, &self.suppressed);
        out.push_str("],\n  \"stale_allowlist\": [");
        for (i, e) in self.stale.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}}}",
                json_str(&e.rule),
                json_str(&e.path),
                e.line.map_or_else(|| "null".to_string(), |l| l.to_string()),
            ));
        }
        if !self.stale.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

fn json_findings(out: &mut String, findings: &[Finding]) {
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}}}",
            json_str(f.rule),
            json_str(&f.path),
            f.line,
            json_str(&f.message),
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn report_shape() {
        let report = Report {
            active: vec![Finding {
                rule: "L1-panic",
                path: "crates/x.rs".into(),
                line: 3,
                message: "msg \"quoted\"".into(),
            }],
            suppressed: vec![],
            stale: vec![],
            files: 7,
        };
        let json = report.to_json();
        assert!(json.contains("\"files_analyzed\": 7"));
        assert!(json.contains("\"active_count\": 1"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(!report.is_clean());
    }
}
