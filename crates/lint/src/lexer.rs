//! Hand-written Rust token scanner, following the idiom of the SQL lexer in
//! `crates/sql/src/lexer.rs`: a byte cursor, one `match` per character class,
//! no dependencies.
//!
//! The scanner is deliberately *approximate*: it produces a flat token
//! stream with line numbers — enough for the pattern-shaped rules in
//! [`crate::rules`] — and does not attempt to parse Rust. Comments (line,
//! doc, nested block) and the *contents* of string/char literals are
//! discarded so rule patterns can never fire inside them.

/// Shape of one lexical token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`text` holds the spelling).
    Ident,
    /// Integer literal.
    Int,
    /// Float literal (`1.0`, `.5` never occurs in Rust, `1e3`, `1.5e-2`).
    Float,
    /// String literal of any flavour (`"…"`, `r"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`) or loop label (`'outer`).
    Lifetime,
    /// Operator or punctuation; `text` holds the (possibly multi-char) glyph.
    Sym,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token shape.
    pub kind: Kind,
    /// Spelling (empty for `Str`/`Char`, whose contents are irrelevant to
    /// every rule and must never trigger one).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
}

impl Token {
    /// True iff this is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == Kind::Ident && self.text == word
    }

    /// True iff this is the symbol `glyph`.
    pub fn is_sym(&self, glyph: &str) -> bool {
        self.kind == Kind::Sym && self.text == glyph
    }
}

/// Multi-character operators, longest first so maximal munch is a plain
/// prefix scan.
const MULTI_SYMS: &[&str] = &[
    "..=", "...", "<<=", ">>=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Scans `src` into a token stream. Unlike the SQL lexer this never fails:
/// an unexpected byte becomes a one-character [`Kind::Sym`] token, because a
/// linter must degrade gracefully on code it half-understands rather than
/// refuse to analyze the file.
pub fn scan(src: &str) -> Vec<Token> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if at(bytes, i + 1) == b'/' => {
                // Line comment (covers `///` and `//!` doc comments too).
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if at(bytes, i + 1) == b'*' => {
                // Block comment; Rust block comments nest.
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && at(bytes, i + 1) == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && at(bytes, i + 1) == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                let start_line = line;
                i = skip_raw_string(bytes, i, &mut line);
                tokens.push(Token { kind: Kind::Str, text: String::new(), line: start_line });
            }
            b'b' if at(bytes, i + 1) == b'\'' => {
                let start_line = line;
                i = skip_char_literal(bytes, i + 1, &mut line);
                tokens.push(Token { kind: Kind::Char, text: String::new(), line: start_line });
            }
            b'b' if at(bytes, i + 1) == b'"' => {
                let start_line = line;
                i = skip_string(bytes, i + 1, &mut line);
                tokens.push(Token { kind: Kind::Str, text: String::new(), line: start_line });
            }
            b'"' => {
                let start_line = line;
                i = skip_string(bytes, i, &mut line);
                tokens.push(Token { kind: Kind::Str, text: String::new(), line: start_line });
            }
            b'\'' => {
                // Lifetime/label (`'a`, `'outer`) or char literal (`'x'`,
                // `'\n'`). A quote followed by an identifier char that is
                // *not* closed by another quote right after one char is a
                // lifetime; everything else is a char literal.
                if is_lifetime(bytes, i) {
                    let start = i + 1;
                    let mut j = start;
                    while j < bytes.len() && is_ident_byte(bytes[j]) {
                        j += 1;
                    }
                    tokens.push(Token {
                        kind: Kind::Lifetime,
                        text: String::from_utf8_lossy(&bytes[start..j]).into_owned(),
                        line,
                    });
                    i = j;
                } else {
                    let start_line = line;
                    i = skip_char_literal(bytes, i, &mut line);
                    tokens.push(Token { kind: Kind::Char, text: String::new(), line: start_line });
                }
            }
            c if c.is_ascii_digit() => {
                let (kind, len) = scan_number(&src[i..]);
                tokens.push(Token { kind, text: src[i..i + len].to_string(), line });
                i += len;
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < bytes.len() && is_ident_byte(bytes[i]) {
                    i += 1;
                }
                tokens.push(Token { kind: Kind::Ident, text: src[start..i].to_string(), line });
            }
            _ => {
                let rest = &src[i..];
                let glyph = MULTI_SYMS.iter().find(|s| rest.starts_with(**s));
                match glyph {
                    Some(s) => {
                        tokens.push(Token { kind: Kind::Sym, text: (*s).to_string(), line });
                        i += s.len();
                    }
                    None => {
                        // Single char; multi-byte UTF-8 collapses to one
                        // symbol token per leading byte (harmless: no rule
                        // matches non-ASCII glyphs).
                        let len = utf8_len(c);
                        tokens.push(Token {
                            kind: Kind::Sym,
                            text: src[i..i + len].to_string(),
                            line,
                        });
                        i += len;
                    }
                }
            }
        }
    }
    tokens
}

fn at(bytes: &[u8], i: usize) -> u8 {
    if i < bytes.len() {
        bytes[i]
    } else {
        0
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

fn utf8_len(lead: u8) -> usize {
    match lead {
        0xF0..=0xF7 => 4,
        0xE0..=0xEF => 3,
        0xC0..=0xDF => 2,
        _ => 1,
    }
}

/// Is `bytes[i..]` the start of a raw (byte) string: `r"`, `r#`, `br"`, `br#`?
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    let j = if bytes[i] == b'b' && at(bytes, i + 1) == b'r' { i + 1 } else { i };
    bytes[j] == b'r' && matches!(at(bytes, j + 1), b'"' | b'#') && {
        // `r#ident` is a raw identifier, not a raw string: require the
        // `#` run to end in `"`.
        let mut k = j + 1;
        while at(bytes, k) == b'#' {
            k += 1;
        }
        at(bytes, k) == b'"'
    }
}

/// A `'` starts a lifetime iff an identifier follows and the literal is not
/// closed after exactly one character (`'a'` is a char, `'a` is a lifetime).
fn is_lifetime(bytes: &[u8], i: usize) -> bool {
    is_ident_start(at(bytes, i + 1)) && at(bytes, i + 2) != b'\''
}

/// Skips a `"…"` string starting at the opening quote; returns the index
/// past the closing quote.
fn skip_string(bytes: &[u8], mut i: usize, line: &mut usize) -> usize {
    i += 1; // opening quote
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips `r##"…"##` (any number of `#`) starting at the `r` (or `br`).
fn skip_raw_string(bytes: &[u8], mut i: usize, line: &mut usize) -> usize {
    if bytes[i] == b'b' {
        i += 1;
    }
    i += 1; // the 'r'
    let mut hashes = 0;
    while at(bytes, i) == b'#' {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if bytes[i] == b'"' {
            let mut k = 0;
            while k < hashes && at(bytes, i + 1 + k) == b'#' {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

/// Skips a `'…'` char literal starting at the opening quote.
fn skip_char_literal(bytes: &[u8], mut i: usize, line: &mut usize) -> usize {
    i += 1; // opening quote
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Scans a numeric literal at the start of `s`; returns its kind and length.
/// Handles underscores, `0x`/`0o`/`0b` prefixes, type suffixes, decimal
/// points and exponents; a trailing `.` method call (`1.max(2)`) or range
/// (`0..n`) is *not* consumed as a fraction.
fn scan_number(s: &str) -> (Kind, usize) {
    let bytes = s.as_bytes();
    let mut i = 0;
    if bytes[0] == b'0' && matches!(at(bytes, 1), b'x' | b'o' | b'b') {
        i = 2;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        return (Kind::Int, i);
    }
    let mut kind = Kind::Int;
    while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
        i += 1;
    }
    if at(bytes, i) == b'.' && at(bytes, i + 1).is_ascii_digit() {
        kind = Kind::Float;
        i += 1;
        while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
            i += 1;
        }
    } else if at(bytes, i) == b'.' && !is_ident_start(at(bytes, i + 1)) && at(bytes, i + 1) != b'.'
    {
        // `1.` with no following digit, identifier, or `.`: a float like `1.`
        kind = Kind::Float;
        i += 1;
    }
    if matches!(at(bytes, i), b'e' | b'E') {
        let mut j = i + 1;
        if matches!(at(bytes, j), b'+' | b'-') {
            j += 1;
        }
        if at(bytes, j).is_ascii_digit() {
            kind = Kind::Float;
            i = j;
            while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                i += 1;
            }
        }
    }
    // Type suffix (`1.0f64`, `7usize`).
    if i < bytes.len() && is_ident_start(bytes[i]) {
        let start = i;
        while i < bytes.len() && is_ident_byte(bytes[i]) {
            i += 1;
        }
        if s[start..i].starts_with('f') {
            kind = Kind::Float;
        }
    }
    (kind, i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<(Kind, String)> {
        scan(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_numbers_symbols() {
        let toks = scan("let x = a.unwrap() + 1.5;");
        assert!(toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(toks.iter().any(|t| t.kind == Kind::Float && t.text == "1.5"));
        assert!(toks.iter().any(|t| t.is_sym(".")));
    }

    #[test]
    fn comments_and_strings_hide_patterns() {
        let toks = scan("// x.unwrap()\n/* panic! /* nested */ */ let s = \"y.unwrap()\";");
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(!toks.iter().any(|t| t.is_ident("panic")));
        assert_eq!(toks.iter().filter(|t| t.kind == Kind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_and_hashes() {
        let toks = scan(r###"let s = r#"a.unwrap() "quoted" "#; s.len()"###);
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(toks.iter().any(|t| t.is_ident("len")));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = scan("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks.iter().any(|t| t.kind == Kind::Lifetime && t.text == "a"));
        assert_eq!(toks.iter().filter(|t| t.kind == Kind::Char).count(), 1);
    }

    #[test]
    fn escaped_quote_char_literal() {
        let toks = scan(r"let c = '\''; let l: &'static str = x;");
        assert_eq!(toks.iter().filter(|t| t.kind == Kind::Char).count(), 1);
        assert!(toks.iter().any(|t| t.kind == Kind::Lifetime && t.text == "static"));
    }

    #[test]
    fn line_numbers() {
        let toks = scan("a\nb\n\nc");
        let lines: Vec<usize> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn multi_char_operators() {
        let toks = texts("a..=b :: -> => == != <= >= .. <<");
        let syms: Vec<&str> =
            toks.iter().filter(|(k, _)| *k == Kind::Sym).map(|(_, s)| s.as_str()).collect();
        assert_eq!(syms, vec!["..=", "::", "->", "=>", "==", "!=", "<=", ">=", "..", "<<"]);
    }

    #[test]
    fn numeric_flavours() {
        assert_eq!(texts("0xFF_u8")[0].0, Kind::Int);
        assert_eq!(texts("1_000")[0].0, Kind::Int);
        assert_eq!(texts("1e3")[0].0, Kind::Float);
        assert_eq!(texts("2.5E-2")[0].0, Kind::Float);
        assert_eq!(texts("7f64")[0].0, Kind::Float);
        // `1.max(2)` is an Int followed by a method call, not a float.
        let toks = texts("1.max(2)");
        assert_eq!(toks[0], (Kind::Int, "1".into()));
        assert!(toks.iter().any(|(k, s)| *k == Kind::Ident && s == "max"));
        // `0..n` keeps the range operator intact.
        let toks = texts("0..n");
        assert_eq!(toks[0].0, Kind::Int);
        assert!(toks.iter().any(|(k, s)| *k == Kind::Sym && s == ".."));
    }

    #[test]
    fn raw_identifier_is_not_a_raw_string() {
        let toks = scan("let r#type = 1; r#fn()");
        assert!(toks.iter().any(|t| t.is_ident("type")));
        assert!(toks.iter().any(|t| t.is_ident("fn")));
        assert!(!toks.iter().any(|t| t.kind == Kind::Str));
    }
}
