//! The grandfather allowlist: suppresses known findings without weakening
//! the rules for new code.
//!
//! Format, one entry per line (`#` starts a comment):
//!
//! ```text
//! <rule-id>|* <path>[:<line>]
//! ```
//!
//! * `L1-panic crates/sql/src/plan.rs:88` — one site.
//! * `L1-index crates/core/src/dataset.rs` — every `L1-index` finding in the
//!   file (for modules whose indexing is bounds-proven by construction).
//! * `* crates/core/src/testdata.rs` — every rule in the file (for modules
//!   compiled only under `cfg(test)` at the crate root).
//!
//! Line-pinned entries are intentionally brittle: editing an allowlisted
//! region forces the author to re-justify the suppression.

use crate::rules::Finding;

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Rule id, or `*` for all rules.
    pub rule: String,
    /// Workspace-relative file path.
    pub path: String,
    /// Specific line, or `None` to cover the whole file.
    pub line: Option<usize>,
    /// 1-based line of the entry inside the allowlist file (for reporting
    /// stale entries).
    pub source_line: usize,
}

impl Entry {
    /// Does this entry suppress the given finding?
    pub fn covers(&self, f: &Finding) -> bool {
        (self.rule == "*" || self.rule == f.rule)
            && self.path == f.path
            && self.line.is_none_or(|l| l == f.line)
    }
}

/// Parses allowlist text. Malformed lines are returned as errors with their
/// line numbers; a missing file should be treated as an empty allowlist by
/// the caller.
pub fn parse(text: &str) -> Result<Vec<Entry>, String> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(rule), Some(target), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!("allowlist line {line_no}: expected `<rule> <path>[:line]`"));
        };
        let (path, line_pin) = match target.rsplit_once(':') {
            Some((p, l)) => {
                let n: usize = l
                    .parse()
                    .map_err(|_| format!("allowlist line {line_no}: bad line number {l:?}"))?;
                (p.to_string(), Some(n))
            }
            None => (target.to_string(), None),
        };
        entries.push(Entry { rule: rule.to_string(), path, line: line_pin, source_line: line_no });
    }
    Ok(entries)
}

/// Splits findings into (active, suppressed) and reports entries that cover
/// nothing (stale) so the allowlist can only shrink over time.
pub fn apply(
    findings: Vec<Finding>,
    entries: &[Entry],
) -> (Vec<Finding>, Vec<Finding>, Vec<Entry>) {
    let mut active = Vec::new();
    let mut suppressed = Vec::new();
    let mut used = vec![false; entries.len()];
    for f in findings {
        match entries.iter().position(|e| e.covers(&f)) {
            Some(i) => {
                used[i] = true;
                suppressed.push(f);
            }
            None => active.push(f),
        }
    }
    let stale =
        entries.iter().zip(used.iter()).filter(|(_, u)| !**u).map(|(e, _)| e.clone()).collect();
    (active, suppressed, stale)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, line: usize) -> Finding {
        Finding { rule, path: path.to_string(), line, message: String::new() }
    }

    #[test]
    fn parse_and_match() {
        let entries = parse(
            "# comment\nL1-panic crates/a.rs:7\nL1-index crates/b.rs\n* crates/t.rs # trailing\n",
        )
        .unwrap();
        assert_eq!(entries.len(), 3);
        assert!(entries[0].covers(&finding("L1-panic", "crates/a.rs", 7)));
        assert!(!entries[0].covers(&finding("L1-panic", "crates/a.rs", 8)));
        assert!(entries[1].covers(&finding("L1-index", "crates/b.rs", 99)));
        assert!(!entries[1].covers(&finding("L1-panic", "crates/b.rs", 99)));
        assert!(entries[2].covers(&finding("L5-determinism", "crates/t.rs", 3)));
    }

    #[test]
    fn malformed_lines_error() {
        assert!(parse("L1-panic").is_err());
        assert!(parse("L1-panic a.rs:x").is_err());
        assert!(parse("L1-panic a.rs extra").is_err());
    }

    #[test]
    fn apply_partitions_and_reports_stale() {
        let entries = parse("L1-panic a.rs:1\nL2-floatord never.rs\n").unwrap();
        let fs = vec![finding("L1-panic", "a.rs", 1), finding("L1-panic", "a.rs", 2)];
        let (active, suppressed, stale) = apply(fs, &entries);
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].line, 2);
        assert_eq!(suppressed.len(), 1);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].path, "never.rs");
    }
}
