//! A lightweight syntactic layer over the flat token stream of
//! [`crate::lexer`]: a brace/bracket/paren-aware *token-tree* parser that
//! recovers just enough structure — items, functions, attribute spans, and
//! call expressions — for the dataflow-aware rules L8–L11, with no external
//! dependencies and no attempt to actually parse Rust.
//!
//! The shape mirrors `proc_macro`'s token trees: a tree is either a leaf
//! token or a delimited group containing more trees. On top of the tree the
//! module recovers:
//!
//! * [`functions`] — every `fn` item at any nesting depth (inline modules,
//!   `impl` blocks, nested functions), each carrying its name, signature
//!   tokens, flattened body tokens and the idents of its attributes. A
//!   nested `fn`'s tokens belong to the *inner* function only, so
//!   per-function rules (L9/L10) attribute code to the right owner;
//!   closures stay with their enclosing function, which is exactly the
//!   granularity the span-balance rule needs.
//! * [`calls`] — call expressions (`name(…)`, `recv.name(…)`, `name!(…)`)
//!   inside a function's token list, with definition sites (`fn name(`)
//!   excluded.
//!
//! Like the lexer, the parser never fails: stray closers become leaves and
//! unclosed groups are closed at end of input, because a linter must
//! degrade gracefully on code it half-understands.

use crate::lexer::{Kind, Token};

/// The delimiter of a [`Group`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `( … )`
    Paren,
    /// `[ … ]`
    Bracket,
    /// `{ … }`
    Brace,
}

impl Delim {
    /// The opening glyph.
    pub fn open(self) -> &'static str {
        match self {
            Delim::Paren => "(",
            Delim::Bracket => "[",
            Delim::Brace => "{",
        }
    }

    /// The closing glyph.
    pub fn close(self) -> &'static str {
        match self {
            Delim::Paren => ")",
            Delim::Bracket => "]",
            Delim::Brace => "}",
        }
    }
}

/// A delimited token group.
#[derive(Debug, Clone, PartialEq)]
pub struct Group {
    /// Which delimiter pair encloses the group.
    pub delim: Delim,
    /// 1-based line of the opening delimiter.
    pub open_line: usize,
    /// 1-based line of the closing delimiter (or of the last token, for a
    /// group left unclosed at end of input).
    pub close_line: usize,
    /// The trees inside the delimiters.
    pub trees: Vec<Tree>,
}

/// One node of the token tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Tree {
    /// A non-delimiter token.
    Leaf(Token),
    /// A `(…)` / `[…]` / `{…}` group.
    Group(Group),
}

/// Parses a token stream into a token-tree forest. Never fails: a stray
/// closing delimiter is kept as a leaf, and groups still open at end of
/// input are closed there.
pub fn parse(tokens: &[Token]) -> Vec<Tree> {
    let mut stack: Vec<Group> = Vec::new();
    let mut top: Vec<Tree> = Vec::new();
    let mut last_line = 1;
    for t in tokens {
        last_line = t.line;
        let open = match t.text.as_str() {
            "(" if t.kind == Kind::Sym => Some(Delim::Paren),
            "[" if t.kind == Kind::Sym => Some(Delim::Bracket),
            "{" if t.kind == Kind::Sym => Some(Delim::Brace),
            _ => None,
        };
        if let Some(delim) = open {
            stack.push(Group { delim, open_line: t.line, close_line: t.line, trees: Vec::new() });
            continue;
        }
        let closes = t.kind == Kind::Sym && matches!(t.text.as_str(), ")" | "]" | "}");
        if closes {
            match stack.pop() {
                Some(mut g) => {
                    // A mismatched closer still closes the innermost group:
                    // recovering *some* nesting beats refusing the file.
                    g.close_line = t.line;
                    push(&mut stack, &mut top, Tree::Group(g));
                }
                None => push(&mut stack, &mut top, Tree::Leaf(t.clone())),
            }
            continue;
        }
        push(&mut stack, &mut top, Tree::Leaf(t.clone()));
    }
    while let Some(mut g) = stack.pop() {
        g.close_line = last_line;
        push(&mut stack, &mut top, Tree::Group(g));
    }
    top
}

fn push(stack: &mut [Group], top: &mut Vec<Tree>, tree: Tree) {
    match stack.last_mut() {
        Some(g) => g.trees.push(tree),
        None => top.push(tree),
    }
}

/// One recovered `fn` item.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// The function's name.
    pub name: String,
    /// 1-based line of the name token.
    pub line: usize,
    /// Idents appearing in the attributes directly above the item
    /// (`#[must_use]` contributes `must_use`, `#[cfg(feature = "x")]`
    /// contributes `cfg` and `feature`).
    pub attrs: Vec<String>,
    /// Signature and body tokens, flattened, with group delimiters
    /// materialized as `Sym` tokens so positional patterns (`name` followed
    /// by `(`) keep working. Tokens of *nested* `fn` items are excluded —
    /// they belong to their own [`Function`] — while closure bodies remain.
    pub tokens: Vec<Token>,
}

impl Function {
    /// True iff any token of the signature or body is the identifier
    /// `word`.
    pub fn references(&self, word: &str) -> bool {
        self.tokens.iter().any(|t| t.is_ident(word))
    }

    /// True iff the item carries an attribute mentioning `ident`.
    pub fn has_attr(&self, ident: &str) -> bool {
        self.attrs.iter().any(|a| a == ident)
    }

    /// The call expressions inside this function (see [`calls`]).
    pub fn calls(&self) -> Vec<Call<'_>> {
        calls(&self.tokens)
    }
}

/// Recovers every `fn` item in the forest, at any nesting depth.
pub fn functions(trees: &[Tree]) -> Vec<Function> {
    let mut out = Vec::new();
    collect_functions(trees, &mut out);
    out
}

fn collect_functions(trees: &[Tree], out: &mut Vec<Function>) {
    let mut pending_attrs: Vec<String> = Vec::new();
    let mut i = 0;
    while i < trees.len() {
        // Attribute: `#` (or `#!`) followed by a bracket group.
        if is_sym(&trees[i], "#") {
            let attr_at = if matches!(trees.get(i + 1), Some(t) if is_sym(t, "!")) { 2 } else { 1 };
            if let Some(Tree::Group(g)) = trees.get(i + attr_at) {
                if g.delim == Delim::Bracket {
                    collect_idents(g, &mut pending_attrs);
                    i += attr_at + 1;
                    continue;
                }
            }
        }
        // Only take the pending attrs once `fn` is actually in view: the
        // argument would be drained even when extraction declines (e.g. at a
        // preceding `pub` token).
        if is_ident(&trees[i], "fn") {
            if let Some(j) = extract_function(trees, i, std::mem::take(&mut pending_attrs), out) {
                i = j;
                continue;
            }
        }
        match &trees[i] {
            Tree::Group(g) => {
                // A non-function group at item level: a module or impl body
                // (or an expression group) that may hold more functions.
                pending_attrs.clear();
                collect_functions(&g.trees, out);
            }
            Tree::Leaf(t) if t.is_sym(";") => pending_attrs.clear(),
            _ => {}
        }
        i += 1;
    }
}

/// If `trees[i]` starts a `fn` item, extracts it (and, recursively, any
/// functions nested in its body) into `out` and returns the index just past
/// the item.
fn extract_function(
    trees: &[Tree],
    i: usize,
    attrs: Vec<String>,
    out: &mut Vec<Function>,
) -> Option<usize> {
    if !is_ident(&trees[i], "fn") {
        return None;
    }
    let name_tok = match trees.get(i + 1) {
        Some(Tree::Leaf(t)) if t.kind == Kind::Ident => t,
        _ => return None, // `fn(u32) -> u32` pointer type, or truncated input
    };
    let mut tokens: Vec<Token> = Vec::new();
    let mut j = i + 2;
    let mut nested: Vec<Function> = Vec::new();
    while j < trees.len() {
        match &trees[j] {
            Tree::Leaf(t) if t.is_sym(";") => {
                // Trait-method declaration without a body.
                j += 1;
                break;
            }
            Tree::Group(g) if g.delim == Delim::Brace => {
                flatten_body(g, &mut tokens, &mut nested);
                j += 1;
                break;
            }
            Tree::Leaf(t) => {
                tokens.push(t.clone());
                j += 1;
            }
            Tree::Group(g) => {
                // Argument list or where-clause brackets: part of the
                // signature, flattened verbatim.
                flatten_body(g, &mut tokens, &mut nested);
                j += 1;
            }
        }
    }
    out.push(Function { name: name_tok.text.clone(), line: name_tok.line, attrs, tokens });
    out.append(&mut nested);
    Some(j)
}

/// Flattens `group` into `tokens` with delimiters materialized, extracting
/// nested `fn` items into `nested` instead of inlining their tokens.
fn flatten_body(group: &Group, tokens: &mut Vec<Token>, nested: &mut Vec<Function>) {
    tokens.push(sym(group.delim.open(), group.open_line));
    let mut i = 0;
    while i < group.trees.len() {
        if let Some(j) = extract_function(&group.trees, i, Vec::new(), nested) {
            i = j;
            continue;
        }
        match &group.trees[i] {
            Tree::Leaf(t) => tokens.push(t.clone()),
            Tree::Group(g) => flatten_body(g, tokens, nested),
        }
        i += 1;
    }
    tokens.push(sym(group.delim.close(), group.close_line));
}

fn sym(text: &str, line: usize) -> Token {
    Token { kind: Kind::Sym, text: text.to_string(), line }
}

fn is_sym(tree: &Tree, s: &str) -> bool {
    matches!(tree, Tree::Leaf(t) if t.is_sym(s))
}

fn is_ident(tree: &Tree, s: &str) -> bool {
    matches!(tree, Tree::Leaf(t) if t.is_ident(s))
}

/// Collects every ident inside a group, recursively (attribute contents).
fn collect_idents(group: &Group, out: &mut Vec<String>) {
    for tree in &group.trees {
        match tree {
            Tree::Leaf(t) if t.kind == Kind::Ident => out.push(t.text.clone()),
            Tree::Group(g) => collect_idents(g, out),
            _ => {}
        }
    }
}

/// One call expression inside a flattened token list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Call<'a> {
    /// The called name (the last path segment for `a::b::name(…)`).
    pub name: &'a str,
    /// 1-based line of the name token.
    pub line: usize,
    /// True for `recv.name(…)` method calls.
    pub method: bool,
    /// True for `name!(…)` / `name![…]` / `name!{…}` macro invocations.
    pub is_macro: bool,
}

/// Recovers call expressions from a flattened token list (as produced by
/// [`Function::tokens`], where group delimiters are materialized). `fn
/// name(` definitions are not calls; `name!(…)` macro invocations are
/// reported with [`Call::is_macro`] set.
pub fn calls(tokens: &[Token]) -> Vec<Call<'_>> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != Kind::Ident {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| &tokens[p]);
        if prev.is_some_and(|p| p.is_ident("fn")) {
            continue;
        }
        match tokens.get(i + 1) {
            Some(n) if n.is_sym("(") => {
                out.push(Call {
                    name: &t.text,
                    line: t.line,
                    method: prev.is_some_and(|p| p.is_sym(".")),
                    is_macro: false,
                });
            }
            Some(n) if n.is_sym("!") => {
                let opens = tokens
                    .get(i + 2)
                    .is_some_and(|o| o.is_sym("(") || o.is_sym("[") || o.is_sym("{"));
                if opens {
                    out.push(Call { name: &t.text, line: t.line, method: false, is_macro: true });
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn forest(src: &str) -> Vec<Tree> {
        parse(&scan(src))
    }

    #[test]
    fn groups_nest_and_record_lines() {
        let trees = forest("fn f() {\n    g(1, [2]);\n}\n");
        // `fn`, `f`, `()`, `{...}`
        assert_eq!(trees.len(), 4);
        let Tree::Group(body) = &trees[3] else { panic!("expected body group") };
        assert_eq!(body.delim, Delim::Brace);
        assert_eq!((body.open_line, body.close_line), (1, 3));
    }

    #[test]
    fn stray_and_unclosed_delimiters_degrade_gracefully() {
        let trees = forest(") fn f() { (");
        assert!(matches!(&trees[0], Tree::Leaf(t) if t.is_sym(")")));
        let funcs = functions(&forest("fn f() { g( }"));
        assert_eq!(funcs.len(), 1, "unclosed paren must not lose the function");
    }

    #[test]
    fn functions_found_at_every_nesting_depth() {
        let src = "impl S {\n    fn method(&self) {}\n}\nmod m {\n    pub fn free() {}\n}\nfn top() {\n    fn nested() {}\n}\n";
        let mut names: Vec<String> = functions(&forest(src)).into_iter().map(|f| f.name).collect();
        names.sort();
        assert_eq!(names, vec!["free", "method", "nested", "top"]);
    }

    #[test]
    fn nested_fn_tokens_belong_to_the_inner_function_only() {
        let src = "fn outer() {\n    inner_call();\n    fn inner() { deep_call(); }\n}\n";
        let funcs = functions(&forest(src));
        let outer = funcs.iter().find(|f| f.name == "outer").unwrap();
        let inner = funcs.iter().find(|f| f.name == "inner").unwrap();
        assert!(outer.references("inner_call"));
        assert!(!outer.references("deep_call"));
        assert!(inner.references("deep_call"));
    }

    #[test]
    fn closures_stay_with_their_enclosing_function() {
        let src = "fn f() {\n    let c = move |x: u32| { g(x) };\n}\n";
        let funcs = functions(&forest(src));
        assert_eq!(funcs.len(), 1);
        assert!(funcs[0].references("g"));
    }

    #[test]
    fn attributes_attach_to_the_next_item() {
        let src = "#[must_use]\npub fn a() -> u32 { 0 }\n#[cfg(feature = \"chaos\")]\nfn b() {}\nfn c() {}\n";
        let funcs = functions(&forest(src));
        assert!(funcs[0].has_attr("must_use"));
        assert!(funcs[1].has_attr("cfg") && funcs[1].has_attr("feature"));
        assert!(funcs[2].attrs.is_empty(), "attrs must not leak past their item");
    }

    #[test]
    fn trait_method_declarations_have_no_body() {
        let funcs = functions(&forest("trait T {\n    fn decl(&self) -> u32;\n    fn with_default(&self) -> u32 { body_call() }\n}\n"));
        assert_eq!(funcs.len(), 2);
        let decl = funcs.iter().find(|f| f.name == "decl").unwrap();
        assert!(!decl.references("body_call"));
        assert!(funcs.iter().find(|f| f.name == "with_default").unwrap().references("body_call"));
    }

    #[test]
    fn calls_distinguish_methods_macros_and_definitions() {
        let src = "fn f() {\n    free(1);\n    recv.method(2);\n    path::seg(3);\n    mac!(4);\n    fn not_a_call() {}\n}\n";
        let funcs = functions(&forest(src));
        let f = funcs.iter().find(|x| x.name == "f").unwrap();
        let got: Vec<(&str, bool, bool)> =
            f.calls().iter().map(|c| (c.name, c.method, c.is_macro)).collect();
        assert_eq!(
            got,
            vec![
                ("free", false, false),
                ("method", true, false),
                ("seg", false, false),
                ("mac", false, true),
            ]
        );
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let funcs = functions(&forest("fn f(cb: fn(u32) -> u32) -> u32 { cb(1) }"));
        assert_eq!(funcs.len(), 1);
        assert_eq!(funcs[0].name, "f");
    }
}
