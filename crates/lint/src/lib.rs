//! # aggsky-lint
//!
//! An offline, dependency-free static-analysis pass over this workspace's
//! own Rust sources. It tokenizes each library file with a hand-rolled
//! scanner (same idiom as `crates/sql/src/lexer.rs`), recovers functions
//! and call expressions through a brace-aware token-tree layer ([`ast`]),
//! and enforces the project rules L1–L11 described in [`rules`];
//! known-good legacy sites live in a committed [`allowlist`], and results
//! can be emitted as a machine-readable JSON [`report`] or a SARIF 2.1.0
//! log ([`sarif`], validated in-tree before writing).
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run -p aggsky-lint                 # exit 1 on findings or stale entries
//! cargo run -p aggsky-lint -- --json lint-report.json
//! cargo run -p aggsky-lint -- --sarif lint.sarif
//! ```
//!
//! The scanned scope is the non-test library code of `core`, `spatial`,
//! `obs`, `sql` and `datagen`. `bench`, the root binary and this crate
//! itself are dev-facing tools above the library layering DAG and are
//! exempt by design; test code may panic freely and is stripped before
//! analysis.

#![warn(missing_docs)]

pub mod allowlist;
pub mod ast;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod sarif;

use report::Report;
use rules::Finding;
use std::path::{Path, PathBuf};

/// Crates whose `src/` trees are analyzed.
pub const SCANNED_CRATES: &[&str] = &["core", "spatial", "obs", "sql", "datagen"];

/// Collects the workspace-relative paths of every scanned `.rs` file under
/// `root` (the workspace root), sorted for deterministic reports.
pub fn scanned_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for krate in SCANNED_CRATES {
        let src = root.join("crates").join(krate).join("src");
        walk(&src, &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Analyzes every scanned file under `root` against the given allowlist
/// text (pass `""` for none).
pub fn run(root: &Path, allowlist_text: &str) -> Result<Report, String> {
    let entries = allowlist::parse(allowlist_text)?;
    let files = scanned_files(root).map_err(|e| format!("scanning workspace: {e}"))?;
    let mut findings: Vec<Finding> = Vec::new();
    let mut analyzed = 0usize;
    for path in &files {
        let rel = path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/");
        let src = std::fs::read_to_string(path).map_err(|e| format!("reading {rel}: {e}"))?;
        findings.extend(rules::analyze(&rel, &src));
        analyzed += 1;
    }
    let (active, suppressed, stale) = allowlist::apply(findings, &entries);
    Ok(Report { active, suppressed, stale, files: analyzed })
}

/// Locates the workspace root by walking upward from `start` until a
/// directory containing both `Cargo.toml` and `crates/` is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
