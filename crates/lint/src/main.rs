//! CLI entry point: `cargo run -p aggsky-lint [-- OPTIONS]`.
//!
//! Options:
//! * `--root <dir>`       workspace root (default: auto-detected from cwd)
//! * `--allowlist <file>` allowlist path (default: `<root>/lint-allowlist.txt`)
//! * `--json <file>`      also write a machine-readable report
//! * `--sarif <file>`     also write a SARIF 2.1.0 log (validated before writing)
//! * `--quiet`            suppress per-finding output
//!
//! Exit status: 0 when no active findings and no stale allowlist entries,
//! 1 on findings or stale entries, 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("aggsky-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: Vec<String>) -> Result<bool, String> {
    let mut root: Option<PathBuf> = None;
    let mut allowlist_path: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut sarif_path: Option<PathBuf> = None;
    let mut quiet = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => root = Some(next_value(&mut it, "--root")?),
            "--allowlist" => allowlist_path = Some(next_value(&mut it, "--allowlist")?),
            "--json" => json_path = Some(next_value(&mut it, "--json")?),
            "--sarif" => sarif_path = Some(next_value(&mut it, "--sarif")?),
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!(
                    "usage: aggsky-lint [--root DIR] [--allowlist FILE] [--json FILE] \
                     [--sarif FILE] [--quiet]"
                );
                return Ok(true);
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("getting cwd: {e}"))?;
            aggsky_lint::find_workspace_root(&cwd)
                .ok_or("could not locate workspace root (pass --root)")?
        }
    };
    let allowlist_path = allowlist_path.unwrap_or_else(|| root.join("lint-allowlist.txt"));
    let allowlist_text = match std::fs::read_to_string(&allowlist_path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(format!("reading {}: {e}", allowlist_path.display())),
    };

    let report = aggsky_lint::run(&root, &allowlist_text)?;

    if let Some(path) = json_path {
        std::fs::write(&path, report.to_json())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }
    if let Some(path) = sarif_path {
        let sarif = aggsky_lint::sarif::to_sarif(&report);
        aggsky_lint::sarif::validate_sarif(&sarif)
            .map_err(|e| format!("generated SARIF failed validation: {e}"))?;
        std::fs::write(&path, sarif).map_err(|e| format!("writing {}: {e}", path.display()))?;
    }
    if !quiet {
        for f in &report.active {
            println!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
        }
        for e in &report.stale {
            // Stale entries fail the run (see Report::is_clean): a drifted
            // pin means a justification no longer covers its line.
            eprintln!(
                "error: stale allowlist entry (line {}): {} {}{} — remove it or re-pin the line",
                e.source_line,
                e.rule,
                e.path,
                e.line.map_or(String::new(), |l| format!(":{l}"))
            );
        }
    }
    println!(
        "aggsky-lint: {} file(s), {} finding(s), {} suppressed, {} stale allowlist entr{}",
        report.files,
        report.active.len(),
        report.suppressed.len(),
        report.stale.len(),
        if report.stale.len() == 1 { "y" } else { "ies" },
    );
    Ok(report.is_clean())
}

fn next_value(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<PathBuf, String> {
    it.next().map(PathBuf::from).ok_or_else(|| format!("{flag} requires a value"))
}
