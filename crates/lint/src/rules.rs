//! The project rules L1–L11. L1–L8 are patterns over the flat token stream
//! produced by [`crate::lexer`]; L9–L11 are *function-granular* dataflow
//! approximations over the token tree recovered by [`crate::ast`].
//!
//! | Rule | Id | What it forbids |
//! |------|----|-----------------|
//! | L1 | `L1-panic` | `.unwrap()`, `.expect(…)`, `panic!`, `todo!`, `unimplemented!` in non-test library code |
//! | L1 | `L1-index` | slice/array indexing `expr[…]` (panics on out-of-range) |
//! | L2 | `L2-floatord` | `partial_cmp` calls and `==`/`!=`/`<`/`<=`/`>`/`>=` against float literals outside the sanctioned `ord` modules |
//! | L3 | `L3-cast` | `as` casts to a numeric type that can truncate or wrap |
//! | L4 | `L4-layering` | imports that violate the crate DAG (`spatial`/`obs` → ∅, `core` → `spatial`+`obs`, `sql` → `core`+`obs`, `datagen` → `core`) |
//! | L5 | `L5-determinism` | `Instant`/`SystemTime`/`thread::sleep`/`std::env` inside counting-path modules |
//! | L6 | `L6-wallclock` | `Instant::now`/`SystemTime::now` reads anywhere in scanned library code (counting paths are covered by the stricter L5); the one sanctioned site is `obs::WallClock`, carried as a justified allowlist entry |
//! | L7 | `L7-unsafe` | every `unsafe` token in scanned library code; the sanctioned SIMD kernel modules carry their occurrences as line-pinned, justified allowlist entries, everywhere else the keyword is forbidden outright |
//! | L8 | `L8-atomics` | every atomic memory-ordering site (`Ordering::Relaxed`/`Acquire`/`Release`/`AcqRel`/`SeqCst`); each one is carried as a line-pinned allowlist entry documenting the happens-before argument it relies on, and `Relaxed` is forbidden outright outside the sanctioned counter modules |
//! | L9 | `L9-budget` | in counting-path modules, a function that calls a compare primitive (`dominates`, `compare`, `compare_bounded`, the columnar/SIMD kernel entry points, …) without referencing the `RunContext`/`Stats` tick-charging API — no code path may count record pairs without charging the budget |
//! | L10 | `L10-spans` | a function that enters more obs spans (`span_start`) than it exits (`span_end`, a `*_span` helper, or a `SpanGuard` binding) — an unbalanced trace corrupts the byte-identical determinism pin |
//! | L11 | `L11-silent-drop` | silently discarded outcomes in library code: `let _ = <call>;`, statement-position `.ok();`, and dropped results of same-file `#[must_use]` functions — interrupted/partial `Outcome`s must be handled or explicitly allowlisted |
//!
//! Code under `#[cfg(test)]` (and any item carrying a `test` attribute) is
//! stripped before the rules run: test code may panic freely.

use crate::ast::{self, Function};
use crate::lexer::{scan, Kind, Token};

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier, e.g. `L1-panic`.
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Ord for Finding {
    /// Reports sort by `(path, line, rule, message)` so same-line findings
    /// from different rules land in one deterministic order, independent of
    /// the order the checks happened to run (or of any parallel walk of the
    /// scanned directories).
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.path.as_str(), self.line, self.rule, self.message.as_str()).cmp(&(
            other.path.as_str(),
            other.line,
            other.rule,
            other.message.as_str(),
        ))
    }
}

impl PartialOrd for Finding {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Keywords that can legally precede `[` without forming an indexing
/// expression (`let [a, b] = …`, `return [x]`, `in [..]`, …).
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "self", "Self", "static", "struct", "super", "trait", "type", "unsafe", "use",
    "where", "while", "yield",
];

/// `as`-cast targets that can truncate (int→narrower-int, float→int) or lose
/// precision (`f32`). `f64` and the 128-bit types are treated as widening
/// and allowed; `usize → u64` style widening must go through
/// `aggsky_core::num` instead of `as` so intent is explicit.
const TRUNCATING_TARGETS: &[&str] =
    &["u8", "u16", "u32", "u64", "usize", "i8", "i16", "i32", "i64", "isize", "f32"];

/// Internal crates and the internal crates each may import. `bench` and the
/// root binary are intentionally unconstrained consumers at the top of the
/// DAG and are not scanned.
const LAYERING: &[(&str, &[&str])] = &[
    ("core", &["aggsky_spatial", "aggsky_obs"]),
    ("spatial", &[]),
    ("obs", &[]),
    ("sql", &["aggsky_core", "aggsky_obs"]),
    ("datagen", &["aggsky_core"]),
];

const INTERNAL_CRATES: &[&str] = &[
    "aggsky_core",
    "aggsky_spatial",
    "aggsky_obs",
    "aggsky_sql",
    "aggsky_datagen",
    "aggsky_bench",
];

/// Modules on the γ-dominance counting path, where wall-clock reads,
/// sleeps and environment lookups would make verdicts or stats
/// nondeterministic (rule L5).
const COUNTING_PATHS: &[&str] = &[
    "crates/core/src/dominance.rs",
    "crates/core/src/gamma.rs",
    "crates/core/src/paircount.rs",
    "crates/core/src/kernel.rs",
    "crates/core/src/columnar.rs",
    "crates/core/src/simd.rs",
    "crates/core/src/paircache.rs",
    "crates/core/src/sweep.rs",
    "crates/core/src/prepared.rs",
    "crates/core/src/dynamic.rs",
    "crates/core/src/service.rs",
    "crates/core/src/matrix.rs",
    "crates/core/src/mbb.rs",
    "crates/core/src/algorithms/",
];

/// Files allowed to use raw float comparisons: the sanctioned total-order
/// modules themselves (rule L2). `spatial` may not depend on `core` (rule
/// L4), so it carries a minimal mirror of `core::ord`.
const SANCTIONED_ORD: &[&str] = &["crates/core/src/ord.rs", "crates/spatial/src/ord.rs"];

/// Files allowed to contain `as` widening casts wrapped in named helpers
/// (rule L3).
const SANCTIONED_NUM: &[&str] = &["crates/core/src/num.rs"];

/// The only modules where `unsafe` may appear at all (rule L7): the
/// runtime-dispatched SIMD kernels, whose `std::arch` intrinsics are
/// `unsafe` by signature. Every occurrence is still a finding — carried as
/// a line-pinned, justified allowlist entry — so a new `unsafe` block even
/// inside these files surfaces in review; outside them the keyword is
/// rejected with a message that does not invite allowlisting.
const SANCTIONED_SIMD: &[&str] = &["crates/core/src/simd.rs"];

/// Atomic memory-ordering names (rule L8). The `cmp::Ordering` variants
/// (`Less`/`Equal`/`Greater`) never match, so comparison code is unaffected.
const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Modules whose atomics may use `Ordering::Relaxed` (rule L8): monotonic
/// work/metric counters that are read for reporting only, never to
/// establish cross-thread happens-before. The scheduler's `spent`/`retries`
/// tallies and the obs metric registry qualify; everywhere else `Relaxed`
/// is rejected outright with a message that does not invite allowlisting.
const SANCTIONED_RELAXED: &[&str] =
    &["crates/core/src/algorithms/parallel.rs", "crates/obs/src/metrics.rs"];

/// Compare primitives called as free functions (possibly path-qualified)
/// on the counting paths (rule L9).
const COMPARE_FREE: &[&str] = &[
    "dominates",
    "dominates_keys",
    "compare_groups",
    "compare_groups_blocked",
    "compare_groups_columnar",
    "compare_groups_columnar_scalar",
    "compare_groups_exhaustive",
    "count_pairs",
];

/// Compare primitives that may also appear as method calls (`Kernel::…`,
/// rule L9).
const COMPARE_METHODS: &[&str] = &["compare", "compare_cached", "compare_bounded"];

/// Identifiers whose presence in a function marks it as participating in
/// tick charging (rule L9): constructing/receiving a [`Stats`] accumulator,
/// polling a `RunContext`, or touching the `record_pairs`/`spent` tallies.
const CHARGE_IDENTS: &[&str] = &["RunContext", "Stats", "poll", "record_pairs", "spent"];

/// The innermost primitive-definition layer (rule L9): `dominance.rs`
/// defines the per-record comparisons themselves; ticks are charged one
/// accounting layer up, per record pair, by everything that loops over
/// these primitives.
const SANCTIONED_PRIMITIVES: &[&str] = &["crates/core/src/dominance.rs"];

/// Analyzes one file's source. `path` is the workspace-relative path (used
/// for rule scoping and reporting); the file is not re-read from disk.
pub fn analyze(path: &str, src: &str) -> Vec<Finding> {
    let tokens = strip_test_code(scan(src));
    let trees = ast::parse(&tokens);
    let functions = ast::functions(&trees);
    let mut findings = Vec::new();
    check_l1(path, &tokens, &mut findings);
    check_l2(path, &tokens, &mut findings);
    check_l3(path, &tokens, &mut findings);
    check_l4(path, &tokens, &mut findings);
    check_l5(path, &tokens, &mut findings);
    check_l6(path, &tokens, &mut findings);
    check_l7(path, &tokens, &mut findings);
    check_l8(path, &tokens, &mut findings);
    check_l9(path, &functions, &mut findings);
    check_l10(path, &functions, &mut findings);
    check_l11(path, &functions, &mut findings);
    findings.sort();
    findings
}

/// Removes every item annotated with an attribute whose argument list
/// mentions `test` (`#[cfg(test)]`, `#[test]`, `#[cfg(all(test, …))]`).
/// The item body is found by brace matching: everything up to the first
/// `;` at depth 0, or through the matching `}` of the first `{`.
fn strip_test_code(tokens: Vec<Token>) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_sym("#") && i + 1 < tokens.len() && tokens[i + 1].is_sym("[") {
            // Find the attribute's closing bracket and whether it gates test
            // code.
            let mut depth = 0;
            let mut j = i + 1;
            let mut is_test = false;
            while j < tokens.len() {
                if tokens[j].is_sym("[") {
                    depth += 1;
                } else if tokens[j].is_sym("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if tokens[j].is_ident("test") {
                    is_test = true;
                }
                j += 1;
            }
            if !is_test {
                // Keep the attribute tokens; rules ignore them anyway.
                out.extend_from_slice(&tokens[i..=j.min(tokens.len() - 1)]);
                i = j + 1;
                continue;
            }
            // Skip any further attributes, then the item itself.
            i = j + 1;
            while i + 1 < tokens.len() && tokens[i].is_sym("#") && tokens[i + 1].is_sym("[") {
                let mut d = 0;
                while i < tokens.len() {
                    if tokens[i].is_sym("[") {
                        d += 1;
                    } else if tokens[i].is_sym("]") {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    i += 1;
                }
                i += 1;
            }
            let mut brace = 0i64;
            let mut entered = false;
            while i < tokens.len() {
                if tokens[i].is_sym("{") {
                    brace += 1;
                    entered = true;
                } else if tokens[i].is_sym("}") {
                    brace -= 1;
                } else if tokens[i].is_sym(";") && !entered {
                    i += 1;
                    break;
                }
                i += 1;
                if entered && brace == 0 {
                    break;
                }
            }
        } else {
            out.push(tokens[i].clone());
            i += 1;
        }
    }
    out
}

/// L1: panic-freedom. Flags `.unwrap()` / `.expect(` calls, panicking
/// macros, and indexing expressions.
fn check_l1(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != Kind::Ident && !(t.kind == Kind::Sym && t.text == "[") {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| &tokens[p]);
        let next = tokens.get(i + 1);
        match t.text.as_str() {
            "unwrap" | "expect" => {
                let is_method_call =
                    prev.is_some_and(|p| p.is_sym(".")) && next.is_some_and(|n| n.is_sym("("));
                if is_method_call {
                    findings.push(Finding {
                        rule: "L1-panic",
                        path: path.to_string(),
                        line: t.line,
                        message: format!(
                            ".{}() panics on the error path; route through error types instead",
                            t.text
                        ),
                    });
                }
            }
            "panic" | "todo" | "unimplemented" if next.is_some_and(|n| n.is_sym("!")) => {
                findings.push(Finding {
                    rule: "L1-panic",
                    path: path.to_string(),
                    line: t.line,
                    message: format!("{}! is forbidden in library code", t.text),
                });
            }
            "[" => {
                // Indexing: `[` directly after a value-producing token. An
                // identifier, `)` or `]` before `[` means `expr[…]`; keywords
                // (`let [a,b]`), symbols (`= [1,2]`, `&[f64]`) and `#[attr]`
                // do not.
                let is_index = prev.is_some_and(|p| match p.kind {
                    Kind::Ident => !KEYWORDS.contains(&p.text.as_str()),
                    Kind::Sym => p.text == ")" || p.text == "]",
                    _ => false,
                });
                if is_index {
                    findings.push(Finding {
                        rule: "L1-index",
                        path: path.to_string(),
                        line: t.line,
                        message: "indexing panics when out of range; use get()/get_mut() or \
                                  prove the bound and allowlist the site"
                            .to_string(),
                    });
                }
            }
            _ => {}
        }
    }
}

/// L2: NaN-safe float ordering. Flags `partial_cmp` calls (but not trait
/// impl definitions) and comparison operators with a float-literal operand,
/// outside the sanctioned `ord` modules.
fn check_l2(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    if SANCTIONED_ORD.contains(&path) {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        let prev = i.checked_sub(1).map(|p| &tokens[p]);
        if t.is_ident("partial_cmp") {
            // `fn partial_cmp` defines the PartialOrd impl; calling it is
            // what loses NaN totality.
            if prev.is_some_and(|p| p.is_ident("fn")) {
                continue;
            }
            findings.push(Finding {
                rule: "L2-floatord",
                path: path.to_string(),
                line: t.line,
                message: "partial_cmp is not total on floats; use aggsky_core::ord (total_cmp)"
                    .to_string(),
            });
        } else if t.kind == Kind::Sym
            && matches!(t.text.as_str(), "==" | "!=" | "<" | "<=" | ">" | ">=")
        {
            let next = tokens.get(i + 1);
            let float_operand = prev.is_some_and(|p| p.kind == Kind::Float)
                || next.is_some_and(|n| n.kind == Kind::Float);
            if float_operand {
                findings.push(Finding {
                    rule: "L2-floatord",
                    path: path.to_string(),
                    line: t.line,
                    message: format!(
                        "raw `{}` against a float literal; use aggsky_core::ord comparators",
                        t.text
                    ),
                });
            }
        }
    }
}

/// L3: no truncating `as` casts. Flags `as <int-or-f32 type>`.
fn check_l3(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    if SANCTIONED_NUM.contains(&path) {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("as") {
            continue;
        }
        if let Some(next) = tokens.get(i + 1) {
            if next.kind == Kind::Ident && TRUNCATING_TARGETS.contains(&next.text.as_str()) {
                findings.push(Finding {
                    rule: "L3-cast",
                    path: path.to_string(),
                    line: t.line,
                    message: format!(
                        "`as {}` can truncate or wrap; use try_from/checked_mul or the \
                         aggsky_core::num widening helpers",
                        next.text
                    ),
                });
            }
        }
    }
}

/// L4: crate layering. Flags references to internal crates outside the
/// allowed set for the file's crate.
fn check_l4(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    let Some(crate_name) = crate_of(path) else { return };
    let Some((_, allowed)) = LAYERING.iter().find(|(c, _)| *c == crate_name) else { return };
    let own = format!("aggsky_{crate_name}");
    for t in tokens {
        if t.kind == Kind::Ident
            && INTERNAL_CRATES.contains(&t.text.as_str())
            && t.text != own
            && !allowed.contains(&t.text.as_str())
        {
            findings.push(Finding {
                rule: "L4-layering",
                path: path.to_string(),
                line: t.line,
                message: format!(
                    "crate `{crate_name}` must not reference `{}` (layering DAG: spatial → ∅, \
                     core → spatial, sql/datagen → core)",
                    t.text
                ),
            });
        }
    }
}

/// L5: determinism on counting paths. Flags clock reads, sleeps and
/// environment access inside the modules listed in [`COUNTING_PATHS`].
fn check_l5(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    if !COUNTING_PATHS.iter().any(|p| path == *p || (p.ends_with('/') && path.starts_with(p))) {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != Kind::Ident {
            continue;
        }
        let banned = match t.text.as_str() {
            "Instant" | "SystemTime" => true,
            "sleep" => true,
            "env" => {
                // Only `std::env` / `core::env`; a local variable named
                // `env` is fine.
                i >= 2
                    && tokens[i - 1].is_sym("::")
                    && (tokens[i - 2].is_ident("std") || tokens[i - 2].is_ident("core"))
            }
            _ => false,
        };
        if banned {
            findings.push(Finding {
                rule: "L5-determinism",
                path: path.to_string(),
                line: t.line,
                message: format!(
                    "`{}` makes counting nondeterministic; timing belongs in the bench crate",
                    t.text
                ),
            });
        }
    }
}

/// L6: no wall-clock reads in library code. Flags `Instant::now` and
/// `SystemTime::now` call sites in every scanned file off the counting
/// paths (on them, L5 forbids the types outright). Wall time belongs to
/// `obs::WallClock` and the bench crate; the former is the one sanctioned
/// site, carried as a line-pinned, justified allowlist entry so any new
/// clock read — even inside `obs` — still surfaces.
fn check_l6(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    if COUNTING_PATHS.iter().any(|p| path == *p || (p.ends_with('/') && path.starts_with(p))) {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        let is_clock_type =
            t.kind == Kind::Ident && matches!(t.text.as_str(), "Instant" | "SystemTime");
        let is_read = is_clock_type
            && tokens.get(i + 1).is_some_and(|n| n.is_sym("::"))
            && tokens.get(i + 2).is_some_and(|n| n.is_ident("now"));
        if is_read {
            findings.push(Finding {
                rule: "L6-wallclock",
                path: path.to_string(),
                line: t.line,
                message: format!(
                    "`{}::now()` reads the wall clock; take a Stamp from obs::WallClock (or \
                     move the timing into the bench crate)",
                    t.text
                ),
            });
        }
    }
}

/// L7: `unsafe` confinement. Flags every `unsafe` token in scanned library
/// code. Inside the [`SANCTIONED_SIMD`] modules the finding asks the
/// author to keep the line-pinned allowlist entry and its safety argument
/// current (moving or adding an `unsafe` invalidates the pin and fails the
/// lint); anywhere else the keyword itself is the violation.
fn check_l7(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    let sanctioned = SANCTIONED_SIMD.contains(&path);
    for t in tokens {
        if !t.is_ident("unsafe") {
            continue;
        }
        let message = if sanctioned {
            "`unsafe` in a sanctioned SIMD module; pin the line in lint-allowlist.txt and keep \
             the module's safety argument current"
                .to_string()
        } else {
            "`unsafe` is confined to the sanctioned SIMD kernel modules (see SANCTIONED_SIMD); \
             rewrite with safe code"
                .to_string()
        };
        findings.push(Finding { rule: "L7-unsafe", path: path.to_string(), line: t.line, message });
    }
}

/// L8: justified atomics. Every atomic memory-ordering site in scanned
/// library code is a finding, carried — like L7's `unsafe` — as a
/// line-pinned allowlist entry whose comment must state the happens-before
/// argument the ordering relies on (or, for `Relaxed`, why no edge is
/// needed). `Relaxed` outside the [`SANCTIONED_RELAXED`] counter modules is
/// rejected with a message that does not invite allowlisting: an unfenced
/// relaxed load/store in ordering-sensitive code is exactly the bug class
/// ThreadSanitizer exists for.
fn check_l8(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("Ordering") {
            continue;
        }
        let is_ordering_site = tokens.get(i + 1).is_some_and(|n| n.is_sym("::"))
            && tokens.get(i + 2).is_some_and(|n| {
                n.kind == Kind::Ident && ATOMIC_ORDERINGS.contains(&n.text.as_str())
            });
        if !is_ordering_site {
            continue;
        }
        let name = &tokens[i + 2].text;
        let message = if name == "Relaxed" && !SANCTIONED_RELAXED.contains(&path) {
            "`Ordering::Relaxed` is forbidden outside the sanctioned counter modules \
             (SANCTIONED_RELAXED); establish a real happens-before edge (Acquire/Release) or \
             move the tally into a sanctioned counter module"
                .to_string()
        } else {
            format!(
                "atomic `Ordering::{name}`: pin the line in lint-allowlist.txt with the \
                 happens-before argument (what it synchronizes with, or why a counter needs \
                 no edge)"
            )
        };
        findings.push(Finding {
            rule: "L8-atomics",
            path: path.to_string(),
            line: t.line,
            message,
        });
    }
}

/// L9: budget conservation. On the counting paths, a function that calls a
/// compare primitive must also reference the tick-charging API
/// ([`CHARGE_IDENTS`]) somewhere in its signature or body — constructing or
/// threading a `Stats`, polling a `RunContext`, or touching the
/// `record_pairs`/`spent` tallies. A function that loops over comparisons
/// with none of these is a code path that counts record pairs for free,
/// which breaks deterministic budgets and `EXPLAIN ANALYZE` totals alike.
fn check_l9(path: &str, functions: &[Function], findings: &mut Vec<Finding>) {
    if !on_counting_path(path) || SANCTIONED_PRIMITIVES.contains(&path) {
        return;
    }
    for f in functions {
        let calls = f.calls();
        let primitive = calls.iter().find(|c| {
            !c.is_macro
                && (COMPARE_METHODS.contains(&c.name)
                    || (!c.method && COMPARE_FREE.contains(&c.name)))
        });
        let Some(call) = primitive else { continue };
        if CHARGE_IDENTS.iter().any(|w| f.references(w)) {
            continue;
        }
        findings.push(Finding {
            rule: "L9-budget",
            path: path.to_string(),
            line: call.line,
            message: format!(
                "fn `{}` calls compare primitive `{}` without referencing the RunContext/Stats \
                 tick-charging API; every counting code path must charge record pairs to the \
                 budget",
                f.name, call.name
            ),
        });
    }
}

/// L10: balanced obs spans. Within one function, every `span_start` call
/// must be matched by a `span_end`, a delegated `*_span` helper call (the
/// `end_prepare_span` idiom), or a `SpanGuard` RAII binding. A function
/// that enters more spans than it exits leaves unfinished spans in the
/// trace, corrupting the byte-identical determinism pin and the
/// `EXPLAIN ANALYZE` span tree.
fn check_l10(path: &str, functions: &[Function], findings: &mut Vec<Finding>) {
    for f in functions {
        if f.references("SpanGuard") {
            continue; // RAII guard closes the span on every exit path
        }
        let calls = f.calls();
        let mut starts = 0usize;
        let mut first_start = 0usize;
        let mut ends = 0usize;
        for c in &calls {
            if c.method && c.name == "span_start" {
                if starts == 0 {
                    first_start = c.line;
                }
                starts += 1;
            } else if (c.method && c.name == "span_end")
                || (!c.is_macro && c.name.ends_with("_span"))
            {
                ends += 1;
            }
        }
        if starts > ends {
            findings.push(Finding {
                rule: "L10-spans",
                path: path.to_string(),
                line: first_start,
                message: format!(
                    "fn `{}` enters {starts} obs span(s) but exits only {ends}; match every \
                     span_start with a span_end (or a `*_span` helper / SpanGuard binding) in \
                     the same function so traces stay balanced",
                    f.name
                ),
            });
        }
    }
}

/// L11: no silent drops. Flags, in every scanned file: `let _ = <expr>;`
/// where the expression performs a call (function, method or macro) or uses
/// `?` — the canonical way to discard a `Result`/`Outcome`; statement-
/// position `.ok();`, which acknowledges an error path only to ignore it;
/// and statement-position calls to a same-file `#[must_use]` function whose
/// value is discarded. Infallible formatting writes and intentionally
/// raced CAS results are carried as justified allowlist entries.
fn check_l11(path: &str, functions: &[Function], findings: &mut Vec<Finding>) {
    let must_use: Vec<&str> =
        functions.iter().filter(|f| f.has_attr("must_use")).map(|f| f.name.as_str()).collect();
    for f in functions {
        let tokens = &f.tokens;
        for (i, t) in tokens.iter().enumerate() {
            if t.is_ident("let")
                && tokens.get(i + 1).is_some_and(|n| n.is_ident("_"))
                && tokens.get(i + 2).is_some_and(|n| n.is_sym("="))
            {
                if let Some(line) = dropped_call_in_binding(tokens, i + 3) {
                    findings.push(Finding {
                        rule: "L11-silent-drop",
                        path: path.to_string(),
                        line,
                        message: "`let _ =` silently discards the call's result; handle the \
                                  Result/Outcome (or allowlist the site with a written \
                                  justification, e.g. infallible String formatting)"
                            .to_string(),
                    });
                }
            }
            let ok_statement = t.is_sym(".")
                && tokens.get(i + 1).is_some_and(|n| n.is_ident("ok"))
                && tokens.get(i + 2).is_some_and(|n| n.is_sym("("))
                && tokens.get(i + 3).is_some_and(|n| n.is_sym(")"))
                && tokens.get(i + 4).is_some_and(|n| n.is_sym(";"))
                && discards_ok_value(tokens, i);
            if ok_statement {
                findings.push(Finding {
                    rule: "L11-silent-drop",
                    path: path.to_string(),
                    line: tokens[i + 1].line,
                    message: "statement-position `.ok();` acknowledges the error path only to \
                              ignore it; handle the Result or allowlist the site"
                        .to_string(),
                });
            }
            let statement_start = i == 0
                || tokens
                    .get(i - 1)
                    .is_some_and(|p| p.is_sym(";") || p.is_sym("{") || p.is_sym("}"));
            if statement_start
                && t.kind == Kind::Ident
                && must_use.contains(&t.text.as_str())
                && tokens.get(i + 1).is_some_and(|n| n.is_sym("("))
            {
                if let Some(close) = matching_close(tokens, i + 1) {
                    if tokens.get(close + 1).is_some_and(|n| n.is_sym(";")) {
                        findings.push(Finding {
                            rule: "L11-silent-drop",
                            path: path.to_string(),
                            line: t.line,
                            message: format!(
                                "`{}` is #[must_use] but its result is discarded in statement \
                                 position; bind and handle the value",
                                t.text
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// Whether the `.ok();` whose `.` sits at `dot` actually discards the
/// value. `let value = env_var().ok();` binds the `Option` and
/// `x = f().ok();` assigns it — only an expression *statement* ending in
/// `.ok()` throws the error path away. Walks back to the statement start
/// (the token after the previous `;`/`{`/`}`) and bails out on `let`,
/// `return`, `break`, or any `=` before the dot.
fn discards_ok_value(tokens: &[Token], dot: usize) -> bool {
    let mut start = 0usize;
    for j in (0..dot).rev() {
        let t = &tokens[j];
        if t.kind == Kind::Sym && matches!(t.text.as_str(), ";" | "{" | "}") {
            start = j + 1;
            break;
        }
    }
    let stmt = &tokens[start..dot];
    if stmt
        .first()
        .is_some_and(|t| t.is_ident("let") || t.is_ident("return") || t.is_ident("break"))
    {
        return false;
    }
    // `x = f().ok();` / `x += …` style assignments consume the value too.
    !stmt
        .iter()
        .any(|t| t.kind == Kind::Sym && matches!(t.text.as_str(), "=" | "+=" | "-=" | "*=" | "/="))
}

/// Scans the right-hand side of a `let _ = …;` binding starting at `start`
/// (the token after `=`). Returns the line of the first call expression or
/// `?` operator inside the binding, or `None` when the RHS performs no
/// call (casts, literals, and plain moves are L11-clean).
fn dropped_call_in_binding(tokens: &[Token], start: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut found: Option<usize> = None;
    let mut i = start;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == Kind::Sym {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    let Some(d) = depth.checked_sub(1) else { break };
                    depth = d;
                }
                ";" if depth == 0 => break,
                "?" => found = found.or(Some(t.line)),
                _ => {}
            }
        } else if t.kind == Kind::Ident && !tokens.get(i - 1).is_some_and(|p| p.is_ident("fn")) {
            let call = tokens.get(i + 1).is_some_and(|n| n.is_sym("("))
                || (tokens.get(i + 1).is_some_and(|n| n.is_sym("!"))
                    && tokens.get(i + 2).is_some_and(|n| n.is_sym("(")));
            if call {
                found = found.or(Some(t.line));
            }
        }
        i += 1;
    }
    found
}

/// Given the index of an opening `(`, returns the index of its matching
/// closer in a flat, delimiter-materialized token list.
fn matching_close(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.kind != Kind::Sym {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Whether `path` is one of the γ-counting modules (shared by L5 and L9).
fn on_counting_path(path: &str) -> bool {
    COUNTING_PATHS.iter().any(|p| path == *p || (p.ends_with('/') && path.starts_with(p)))
}

/// Extracts the crate name from a `crates/<name>/src/…` path.
fn crate_of(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("crates/")?;
    let (name, tail) = rest.split_once('/')?;
    tail.starts_with("src/").then_some(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_at(path: &str, src: &str) -> Vec<(&'static str, usize)> {
        analyze(path, src).into_iter().map(|f| (f.rule, f.line)).collect()
    }

    #[test]
    fn l1_flags_unwrap_expect_and_macros() {
        let src = "fn f() {\n    x.unwrap();\n    y.expect(\"msg\");\n    panic!(\"boom\");\n    todo!()\n}\n";
        let got = rules_at("crates/core/src/x.rs", src);
        assert_eq!(got, vec![("L1-panic", 2), ("L1-panic", 3), ("L1-panic", 4), ("L1-panic", 5)]);
    }

    #[test]
    fn l1_ignores_unwrap_or_variants() {
        let src = "fn f() { x.unwrap_or(0); x.unwrap_or_else(|| 1); x.unwrap_or_default(); }";
        assert!(rules_at("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn l1_flags_indexing_but_not_array_syntax() {
        let src = "fn f(v: &[f64]) -> f64 {\n    let a = [1, 2];\n    let [x, y] = a;\n    v[0] + g()[1]\n}\n";
        let got = rules_at("crates/core/src/x.rs", src);
        assert_eq!(got, vec![("L1-index", 4), ("L1-index", 4)]);
    }

    #[test]
    fn l2_flags_partial_cmp_calls_not_defs() {
        let src = "impl PartialOrd for E {\n    fn partial_cmp(&self, o: &E) -> Option<Ordering> { Some(self.cmp(o)) }\n}\nfn g(a: f64, b: f64) { a.partial_cmp(&b); }\n";
        let got = rules_at("crates/core/src/x.rs", src);
        assert_eq!(got, vec![("L2-floatord", 4)]);
    }

    #[test]
    fn l2_flags_float_literal_comparisons() {
        let src = "fn f(p: f64) -> bool { p >= 1.0 || 0.5 < p }";
        let got = rules_at("crates/core/src/x.rs", src);
        assert_eq!(got, vec![("L2-floatord", 1), ("L2-floatord", 1)]);
    }

    #[test]
    fn l2_sanctioned_module_is_exempt() {
        let src = "pub fn gt(a: f64, b: f64) -> bool { a > b || a == 1.0 }";
        assert!(rules_at("crates/core/src/ord.rs", src).is_empty());
        assert!(!rules_at("crates/core/src/other.rs", src).is_empty());
    }

    #[test]
    fn l3_flags_truncating_casts_only() {
        let src = "fn f(x: usize, y: f64) { let _ = x as u64; let _ = y as u32; let _ = x as f64; let _ = x as u128; }";
        let got = rules_at("crates/core/src/x.rs", src);
        assert_eq!(got, vec![("L3-cast", 1), ("L3-cast", 1)]);
    }

    #[test]
    fn l4_layering_violations() {
        let src = "use aggsky_sql::Engine;\n";
        assert_eq!(rules_at("crates/core/src/x.rs", src), vec![("L4-layering", 1)]);
        assert_eq!(
            rules_at("crates/spatial/src/x.rs", "use aggsky_core::Gamma;"),
            vec![("L4-layering", 1)]
        );
        assert!(rules_at("crates/core/src/x.rs", "use aggsky_spatial::RTree;").is_empty());
        assert!(rules_at("crates/sql/src/x.rs", "use aggsky_core::Gamma;").is_empty());
    }

    #[test]
    fn l5_only_fires_on_counting_paths() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        assert_eq!(
            rules_at("crates/core/src/paircount.rs", src),
            vec![("L5-determinism", 1), ("L5-determinism", 2)]
        );
        // Off the counting paths L5 is silent; the actual clock read is
        // still caught, by the workspace-wide L6.
        assert_eq!(rules_at("crates/core/src/stats.rs", src), vec![("L6-wallclock", 2)]);
        let env = "fn f() { let v = std::env::var(\"X\"); }";
        assert_eq!(
            rules_at("crates/core/src/algorithms/parallel.rs", env),
            vec![("L5-determinism", 1)]
        );
    }

    #[test]
    fn l6_flags_clock_reads_everywhere_but_counting_paths() {
        let src = "use std::time::{Instant, SystemTime};\n\
                   fn f() { let t = Instant::now(); }\n\
                   fn g() { let t = SystemTime::now(); }\n\
                   fn h(start: Instant) -> bool { start.elapsed().as_secs() > 0 }\n";
        // The `use` and the `Instant` parameter type are not reads; the two
        // `::now()` calls are, in every scanned crate including obs.
        for path in
            ["crates/sql/src/exec.rs", "crates/core/src/stats.rs", "crates/obs/src/clock.rs"]
        {
            assert_eq!(
                rules_at(path, src),
                vec![("L6-wallclock", 2), ("L6-wallclock", 3)],
                "{path}"
            );
        }
        // On a counting path L5 owns the diagnosis (it forbids the types
        // outright, not just the reads) and L6 stays silent.
        assert!(rules_at("crates/core/src/kernel.rs", src)
            .iter()
            .all(|(rule, _)| *rule == "L5-determinism"));
    }

    #[test]
    fn l7_confines_unsafe_to_sanctioned_simd_modules() {
        let src = "fn f() {\n    let v = unsafe { intrinsics() };\n}\nunsafe fn intrinsics() -> u32 { 0 }\n";
        let outside = analyze("crates/core/src/kernel.rs", src);
        let outside_rules: Vec<_> = outside.iter().map(|f| (f.rule, f.line)).collect();
        assert_eq!(outside_rules, vec![("L7-unsafe", 2), ("L7-unsafe", 4)]);
        assert!(
            outside.iter().all(|f| f.message.contains("rewrite with safe code")),
            "outside the sanctioned modules the keyword itself is the violation"
        );
        let inside = analyze("crates/core/src/simd.rs", src);
        let inside_rules: Vec<_> = inside.iter().map(|f| (f.rule, f.line)).collect();
        assert_eq!(inside_rules, vec![("L7-unsafe", 2), ("L7-unsafe", 4)]);
        assert!(
            inside.iter().all(|f| f.message.contains("pin the line")),
            "sanctioned modules still surface every occurrence, as pinnable findings"
        );
    }

    #[test]
    fn cfg_test_code_is_stripped() {
        let src = "fn lib() -> u32 { 1 }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); v[0]; }\n}\n";
        assert!(rules_at("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn non_test_attributes_do_not_strip() {
        let src = "#[derive(Debug)]\nstruct S;\nfn f() { x.unwrap(); }\n";
        assert_eq!(rules_at("crates/core/src/x.rs", src), vec![("L1-panic", 3)]);
    }
}
