//! The project rules L1–L7, implemented as patterns over the token stream
//! produced by [`crate::lexer`].
//!
//! | Rule | Id | What it forbids |
//! |------|----|-----------------|
//! | L1 | `L1-panic` | `.unwrap()`, `.expect(…)`, `panic!`, `todo!`, `unimplemented!` in non-test library code |
//! | L1 | `L1-index` | slice/array indexing `expr[…]` (panics on out-of-range) |
//! | L2 | `L2-floatord` | `partial_cmp` calls and `==`/`!=`/`<`/`<=`/`>`/`>=` against float literals outside the sanctioned `ord` modules |
//! | L3 | `L3-cast` | `as` casts to a numeric type that can truncate or wrap |
//! | L4 | `L4-layering` | imports that violate the crate DAG (`spatial`/`obs` → ∅, `core` → `spatial`+`obs`, `sql` → `core`+`obs`, `datagen` → `core`) |
//! | L5 | `L5-determinism` | `Instant`/`SystemTime`/`thread::sleep`/`std::env` inside counting-path modules |
//! | L6 | `L6-wallclock` | `Instant::now`/`SystemTime::now` reads anywhere in scanned library code (counting paths are covered by the stricter L5); the one sanctioned site is `obs::WallClock`, carried as a justified allowlist entry |
//! | L7 | `L7-unsafe` | every `unsafe` token in scanned library code; the sanctioned SIMD kernel modules carry their occurrences as line-pinned, justified allowlist entries, everywhere else the keyword is forbidden outright |
//!
//! Code under `#[cfg(test)]` (and any item carrying a `test` attribute) is
//! stripped before the rules run: test code may panic freely.

use crate::lexer::{scan, Kind, Token};

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier, e.g. `L1-panic`.
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

/// Keywords that can legally precede `[` without forming an indexing
/// expression (`let [a, b] = …`, `return [x]`, `in [..]`, …).
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "self", "Self", "static", "struct", "super", "trait", "type", "unsafe", "use",
    "where", "while", "yield",
];

/// `as`-cast targets that can truncate (int→narrower-int, float→int) or lose
/// precision (`f32`). `f64` and the 128-bit types are treated as widening
/// and allowed; `usize → u64` style widening must go through
/// `aggsky_core::num` instead of `as` so intent is explicit.
const TRUNCATING_TARGETS: &[&str] =
    &["u8", "u16", "u32", "u64", "usize", "i8", "i16", "i32", "i64", "isize", "f32"];

/// Internal crates and the internal crates each may import. `bench` and the
/// root binary are intentionally unconstrained consumers at the top of the
/// DAG and are not scanned.
const LAYERING: &[(&str, &[&str])] = &[
    ("core", &["aggsky_spatial", "aggsky_obs"]),
    ("spatial", &[]),
    ("obs", &[]),
    ("sql", &["aggsky_core", "aggsky_obs"]),
    ("datagen", &["aggsky_core"]),
];

const INTERNAL_CRATES: &[&str] = &[
    "aggsky_core",
    "aggsky_spatial",
    "aggsky_obs",
    "aggsky_sql",
    "aggsky_datagen",
    "aggsky_bench",
];

/// Modules on the γ-dominance counting path, where wall-clock reads,
/// sleeps and environment lookups would make verdicts or stats
/// nondeterministic (rule L5).
const COUNTING_PATHS: &[&str] = &[
    "crates/core/src/dominance.rs",
    "crates/core/src/gamma.rs",
    "crates/core/src/paircount.rs",
    "crates/core/src/kernel.rs",
    "crates/core/src/columnar.rs",
    "crates/core/src/simd.rs",
    "crates/core/src/paircache.rs",
    "crates/core/src/sweep.rs",
    "crates/core/src/prepared.rs",
    "crates/core/src/matrix.rs",
    "crates/core/src/mbb.rs",
    "crates/core/src/algorithms/",
];

/// Files allowed to use raw float comparisons: the sanctioned total-order
/// modules themselves (rule L2). `spatial` may not depend on `core` (rule
/// L4), so it carries a minimal mirror of `core::ord`.
const SANCTIONED_ORD: &[&str] = &["crates/core/src/ord.rs", "crates/spatial/src/ord.rs"];

/// Files allowed to contain `as` widening casts wrapped in named helpers
/// (rule L3).
const SANCTIONED_NUM: &[&str] = &["crates/core/src/num.rs"];

/// The only modules where `unsafe` may appear at all (rule L7): the
/// runtime-dispatched SIMD kernels, whose `std::arch` intrinsics are
/// `unsafe` by signature. Every occurrence is still a finding — carried as
/// a line-pinned, justified allowlist entry — so a new `unsafe` block even
/// inside these files surfaces in review; outside them the keyword is
/// rejected with a message that does not invite allowlisting.
const SANCTIONED_SIMD: &[&str] = &["crates/core/src/simd.rs"];

/// Analyzes one file's source. `path` is the workspace-relative path (used
/// for rule scoping and reporting); the file is not re-read from disk.
pub fn analyze(path: &str, src: &str) -> Vec<Finding> {
    let tokens = strip_test_code(scan(src));
    let mut findings = Vec::new();
    check_l1(path, &tokens, &mut findings);
    check_l2(path, &tokens, &mut findings);
    check_l3(path, &tokens, &mut findings);
    check_l4(path, &tokens, &mut findings);
    check_l5(path, &tokens, &mut findings);
    check_l6(path, &tokens, &mut findings);
    check_l7(path, &tokens, &mut findings);
    findings
}

/// Removes every item annotated with an attribute whose argument list
/// mentions `test` (`#[cfg(test)]`, `#[test]`, `#[cfg(all(test, …))]`).
/// The item body is found by brace matching: everything up to the first
/// `;` at depth 0, or through the matching `}` of the first `{`.
fn strip_test_code(tokens: Vec<Token>) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_sym("#") && i + 1 < tokens.len() && tokens[i + 1].is_sym("[") {
            // Find the attribute's closing bracket and whether it gates test
            // code.
            let mut depth = 0;
            let mut j = i + 1;
            let mut is_test = false;
            while j < tokens.len() {
                if tokens[j].is_sym("[") {
                    depth += 1;
                } else if tokens[j].is_sym("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if tokens[j].is_ident("test") {
                    is_test = true;
                }
                j += 1;
            }
            if !is_test {
                // Keep the attribute tokens; rules ignore them anyway.
                out.extend_from_slice(&tokens[i..=j.min(tokens.len() - 1)]);
                i = j + 1;
                continue;
            }
            // Skip any further attributes, then the item itself.
            i = j + 1;
            while i + 1 < tokens.len() && tokens[i].is_sym("#") && tokens[i + 1].is_sym("[") {
                let mut d = 0;
                while i < tokens.len() {
                    if tokens[i].is_sym("[") {
                        d += 1;
                    } else if tokens[i].is_sym("]") {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    i += 1;
                }
                i += 1;
            }
            let mut brace = 0i64;
            let mut entered = false;
            while i < tokens.len() {
                if tokens[i].is_sym("{") {
                    brace += 1;
                    entered = true;
                } else if tokens[i].is_sym("}") {
                    brace -= 1;
                } else if tokens[i].is_sym(";") && !entered {
                    i += 1;
                    break;
                }
                i += 1;
                if entered && brace == 0 {
                    break;
                }
            }
        } else {
            out.push(tokens[i].clone());
            i += 1;
        }
    }
    out
}

/// L1: panic-freedom. Flags `.unwrap()` / `.expect(` calls, panicking
/// macros, and indexing expressions.
fn check_l1(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != Kind::Ident && !(t.kind == Kind::Sym && t.text == "[") {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| &tokens[p]);
        let next = tokens.get(i + 1);
        match t.text.as_str() {
            "unwrap" | "expect" => {
                let is_method_call =
                    prev.is_some_and(|p| p.is_sym(".")) && next.is_some_and(|n| n.is_sym("("));
                if is_method_call {
                    findings.push(Finding {
                        rule: "L1-panic",
                        path: path.to_string(),
                        line: t.line,
                        message: format!(
                            ".{}() panics on the error path; route through error types instead",
                            t.text
                        ),
                    });
                }
            }
            "panic" | "todo" | "unimplemented" if next.is_some_and(|n| n.is_sym("!")) => {
                findings.push(Finding {
                    rule: "L1-panic",
                    path: path.to_string(),
                    line: t.line,
                    message: format!("{}! is forbidden in library code", t.text),
                });
            }
            "[" => {
                // Indexing: `[` directly after a value-producing token. An
                // identifier, `)` or `]` before `[` means `expr[…]`; keywords
                // (`let [a,b]`), symbols (`= [1,2]`, `&[f64]`) and `#[attr]`
                // do not.
                let is_index = prev.is_some_and(|p| match p.kind {
                    Kind::Ident => !KEYWORDS.contains(&p.text.as_str()),
                    Kind::Sym => p.text == ")" || p.text == "]",
                    _ => false,
                });
                if is_index {
                    findings.push(Finding {
                        rule: "L1-index",
                        path: path.to_string(),
                        line: t.line,
                        message: "indexing panics when out of range; use get()/get_mut() or \
                                  prove the bound and allowlist the site"
                            .to_string(),
                    });
                }
            }
            _ => {}
        }
    }
}

/// L2: NaN-safe float ordering. Flags `partial_cmp` calls (but not trait
/// impl definitions) and comparison operators with a float-literal operand,
/// outside the sanctioned `ord` modules.
fn check_l2(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    if SANCTIONED_ORD.contains(&path) {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        let prev = i.checked_sub(1).map(|p| &tokens[p]);
        if t.is_ident("partial_cmp") {
            // `fn partial_cmp` defines the PartialOrd impl; calling it is
            // what loses NaN totality.
            if prev.is_some_and(|p| p.is_ident("fn")) {
                continue;
            }
            findings.push(Finding {
                rule: "L2-floatord",
                path: path.to_string(),
                line: t.line,
                message: "partial_cmp is not total on floats; use aggsky_core::ord (total_cmp)"
                    .to_string(),
            });
        } else if t.kind == Kind::Sym
            && matches!(t.text.as_str(), "==" | "!=" | "<" | "<=" | ">" | ">=")
        {
            let next = tokens.get(i + 1);
            let float_operand = prev.is_some_and(|p| p.kind == Kind::Float)
                || next.is_some_and(|n| n.kind == Kind::Float);
            if float_operand {
                findings.push(Finding {
                    rule: "L2-floatord",
                    path: path.to_string(),
                    line: t.line,
                    message: format!(
                        "raw `{}` against a float literal; use aggsky_core::ord comparators",
                        t.text
                    ),
                });
            }
        }
    }
}

/// L3: no truncating `as` casts. Flags `as <int-or-f32 type>`.
fn check_l3(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    if SANCTIONED_NUM.contains(&path) {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("as") {
            continue;
        }
        if let Some(next) = tokens.get(i + 1) {
            if next.kind == Kind::Ident && TRUNCATING_TARGETS.contains(&next.text.as_str()) {
                findings.push(Finding {
                    rule: "L3-cast",
                    path: path.to_string(),
                    line: t.line,
                    message: format!(
                        "`as {}` can truncate or wrap; use try_from/checked_mul or the \
                         aggsky_core::num widening helpers",
                        next.text
                    ),
                });
            }
        }
    }
}

/// L4: crate layering. Flags references to internal crates outside the
/// allowed set for the file's crate.
fn check_l4(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    let Some(crate_name) = crate_of(path) else { return };
    let Some((_, allowed)) = LAYERING.iter().find(|(c, _)| *c == crate_name) else { return };
    let own = format!("aggsky_{crate_name}");
    for t in tokens {
        if t.kind == Kind::Ident
            && INTERNAL_CRATES.contains(&t.text.as_str())
            && t.text != own
            && !allowed.contains(&t.text.as_str())
        {
            findings.push(Finding {
                rule: "L4-layering",
                path: path.to_string(),
                line: t.line,
                message: format!(
                    "crate `{crate_name}` must not reference `{}` (layering DAG: spatial → ∅, \
                     core → spatial, sql/datagen → core)",
                    t.text
                ),
            });
        }
    }
}

/// L5: determinism on counting paths. Flags clock reads, sleeps and
/// environment access inside the modules listed in [`COUNTING_PATHS`].
fn check_l5(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    if !COUNTING_PATHS.iter().any(|p| path == *p || (p.ends_with('/') && path.starts_with(p))) {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != Kind::Ident {
            continue;
        }
        let banned = match t.text.as_str() {
            "Instant" | "SystemTime" => true,
            "sleep" => true,
            "env" => {
                // Only `std::env` / `core::env`; a local variable named
                // `env` is fine.
                i >= 2
                    && tokens[i - 1].is_sym("::")
                    && (tokens[i - 2].is_ident("std") || tokens[i - 2].is_ident("core"))
            }
            _ => false,
        };
        if banned {
            findings.push(Finding {
                rule: "L5-determinism",
                path: path.to_string(),
                line: t.line,
                message: format!(
                    "`{}` makes counting nondeterministic; timing belongs in the bench crate",
                    t.text
                ),
            });
        }
    }
}

/// L6: no wall-clock reads in library code. Flags `Instant::now` and
/// `SystemTime::now` call sites in every scanned file off the counting
/// paths (on them, L5 forbids the types outright). Wall time belongs to
/// `obs::WallClock` and the bench crate; the former is the one sanctioned
/// site, carried as a line-pinned, justified allowlist entry so any new
/// clock read — even inside `obs` — still surfaces.
fn check_l6(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    if COUNTING_PATHS.iter().any(|p| path == *p || (p.ends_with('/') && path.starts_with(p))) {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        let is_clock_type =
            t.kind == Kind::Ident && matches!(t.text.as_str(), "Instant" | "SystemTime");
        let is_read = is_clock_type
            && tokens.get(i + 1).is_some_and(|n| n.is_sym("::"))
            && tokens.get(i + 2).is_some_and(|n| n.is_ident("now"));
        if is_read {
            findings.push(Finding {
                rule: "L6-wallclock",
                path: path.to_string(),
                line: t.line,
                message: format!(
                    "`{}::now()` reads the wall clock; take a Stamp from obs::WallClock (or \
                     move the timing into the bench crate)",
                    t.text
                ),
            });
        }
    }
}

/// L7: `unsafe` confinement. Flags every `unsafe` token in scanned library
/// code. Inside the [`SANCTIONED_SIMD`] modules the finding asks the
/// author to keep the line-pinned allowlist entry and its safety argument
/// current (moving or adding an `unsafe` invalidates the pin and fails the
/// lint); anywhere else the keyword itself is the violation.
fn check_l7(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    let sanctioned = SANCTIONED_SIMD.contains(&path);
    for t in tokens {
        if !t.is_ident("unsafe") {
            continue;
        }
        let message = if sanctioned {
            "`unsafe` in a sanctioned SIMD module; pin the line in lint-allowlist.txt and keep \
             the module's safety argument current"
                .to_string()
        } else {
            "`unsafe` is confined to the sanctioned SIMD kernel modules (see SANCTIONED_SIMD); \
             rewrite with safe code"
                .to_string()
        };
        findings.push(Finding { rule: "L7-unsafe", path: path.to_string(), line: t.line, message });
    }
}

/// Extracts the crate name from a `crates/<name>/src/…` path.
fn crate_of(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("crates/")?;
    let (name, tail) = rest.split_once('/')?;
    tail.starts_with("src/").then_some(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_at(path: &str, src: &str) -> Vec<(&'static str, usize)> {
        analyze(path, src).into_iter().map(|f| (f.rule, f.line)).collect()
    }

    #[test]
    fn l1_flags_unwrap_expect_and_macros() {
        let src = "fn f() {\n    x.unwrap();\n    y.expect(\"msg\");\n    panic!(\"boom\");\n    todo!()\n}\n";
        let got = rules_at("crates/core/src/x.rs", src);
        assert_eq!(got, vec![("L1-panic", 2), ("L1-panic", 3), ("L1-panic", 4), ("L1-panic", 5)]);
    }

    #[test]
    fn l1_ignores_unwrap_or_variants() {
        let src = "fn f() { x.unwrap_or(0); x.unwrap_or_else(|| 1); x.unwrap_or_default(); }";
        assert!(rules_at("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn l1_flags_indexing_but_not_array_syntax() {
        let src = "fn f(v: &[f64]) -> f64 {\n    let a = [1, 2];\n    let [x, y] = a;\n    v[0] + g()[1]\n}\n";
        let got = rules_at("crates/core/src/x.rs", src);
        assert_eq!(got, vec![("L1-index", 4), ("L1-index", 4)]);
    }

    #[test]
    fn l2_flags_partial_cmp_calls_not_defs() {
        let src = "impl PartialOrd for E {\n    fn partial_cmp(&self, o: &E) -> Option<Ordering> { Some(self.cmp(o)) }\n}\nfn g(a: f64, b: f64) { a.partial_cmp(&b); }\n";
        let got = rules_at("crates/core/src/x.rs", src);
        assert_eq!(got, vec![("L2-floatord", 4)]);
    }

    #[test]
    fn l2_flags_float_literal_comparisons() {
        let src = "fn f(p: f64) -> bool { p >= 1.0 || 0.5 < p }";
        let got = rules_at("crates/core/src/x.rs", src);
        assert_eq!(got, vec![("L2-floatord", 1), ("L2-floatord", 1)]);
    }

    #[test]
    fn l2_sanctioned_module_is_exempt() {
        let src = "pub fn gt(a: f64, b: f64) -> bool { a > b || a == 1.0 }";
        assert!(rules_at("crates/core/src/ord.rs", src).is_empty());
        assert!(!rules_at("crates/core/src/other.rs", src).is_empty());
    }

    #[test]
    fn l3_flags_truncating_casts_only() {
        let src = "fn f(x: usize, y: f64) { let _ = x as u64; let _ = y as u32; let _ = x as f64; let _ = x as u128; }";
        let got = rules_at("crates/core/src/x.rs", src);
        assert_eq!(got, vec![("L3-cast", 1), ("L3-cast", 1)]);
    }

    #[test]
    fn l4_layering_violations() {
        let src = "use aggsky_sql::Engine;\n";
        assert_eq!(rules_at("crates/core/src/x.rs", src), vec![("L4-layering", 1)]);
        assert_eq!(
            rules_at("crates/spatial/src/x.rs", "use aggsky_core::Gamma;"),
            vec![("L4-layering", 1)]
        );
        assert!(rules_at("crates/core/src/x.rs", "use aggsky_spatial::RTree;").is_empty());
        assert!(rules_at("crates/sql/src/x.rs", "use aggsky_core::Gamma;").is_empty());
    }

    #[test]
    fn l5_only_fires_on_counting_paths() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        assert_eq!(
            rules_at("crates/core/src/paircount.rs", src),
            vec![("L5-determinism", 1), ("L5-determinism", 2)]
        );
        // Off the counting paths L5 is silent; the actual clock read is
        // still caught, by the workspace-wide L6.
        assert_eq!(rules_at("crates/core/src/stats.rs", src), vec![("L6-wallclock", 2)]);
        let env = "fn f() { let v = std::env::var(\"X\"); }";
        assert_eq!(
            rules_at("crates/core/src/algorithms/parallel.rs", env),
            vec![("L5-determinism", 1)]
        );
    }

    #[test]
    fn l6_flags_clock_reads_everywhere_but_counting_paths() {
        let src = "use std::time::{Instant, SystemTime};\n\
                   fn f() { let t = Instant::now(); }\n\
                   fn g() { let t = SystemTime::now(); }\n\
                   fn h(start: Instant) -> bool { start.elapsed().as_secs() > 0 }\n";
        // The `use` and the `Instant` parameter type are not reads; the two
        // `::now()` calls are, in every scanned crate including obs.
        for path in
            ["crates/sql/src/exec.rs", "crates/core/src/stats.rs", "crates/obs/src/clock.rs"]
        {
            assert_eq!(
                rules_at(path, src),
                vec![("L6-wallclock", 2), ("L6-wallclock", 3)],
                "{path}"
            );
        }
        // On a counting path L5 owns the diagnosis (it forbids the types
        // outright, not just the reads) and L6 stays silent.
        assert!(rules_at("crates/core/src/kernel.rs", src)
            .iter()
            .all(|(rule, _)| *rule == "L5-determinism"));
    }

    #[test]
    fn l7_confines_unsafe_to_sanctioned_simd_modules() {
        let src = "fn f() {\n    let v = unsafe { intrinsics() };\n}\nunsafe fn intrinsics() -> u32 { 0 }\n";
        let outside = analyze("crates/core/src/kernel.rs", src);
        let outside_rules: Vec<_> = outside.iter().map(|f| (f.rule, f.line)).collect();
        assert_eq!(outside_rules, vec![("L7-unsafe", 2), ("L7-unsafe", 4)]);
        assert!(
            outside.iter().all(|f| f.message.contains("rewrite with safe code")),
            "outside the sanctioned modules the keyword itself is the violation"
        );
        let inside = analyze("crates/core/src/simd.rs", src);
        let inside_rules: Vec<_> = inside.iter().map(|f| (f.rule, f.line)).collect();
        assert_eq!(inside_rules, vec![("L7-unsafe", 2), ("L7-unsafe", 4)]);
        assert!(
            inside.iter().all(|f| f.message.contains("pin the line")),
            "sanctioned modules still surface every occurrence, as pinnable findings"
        );
    }

    #[test]
    fn cfg_test_code_is_stripped() {
        let src = "fn lib() -> u32 { 1 }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); v[0]; }\n}\n";
        assert!(rules_at("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn non_test_attributes_do_not_strip() {
        let src = "#[derive(Debug)]\nstruct S;\nfn f() { x.unwrap(); }\n";
        assert_eq!(rules_at("crates/core/src/x.rs", src), vec![("L1-panic", 3)]);
    }
}
