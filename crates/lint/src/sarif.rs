//! SARIF 2.1.0 export and offline structural validation.
//!
//! [`to_sarif`] renders a [`Report`] as a SARIF 2.1.0 log so CI can attach
//! findings to pull requests with standard tooling; active findings become
//! `error` results and allowlisted findings become `note` results carrying
//! an `external` suppression, so the grandfathered debt stays visible in
//! the artifact without failing the run. Like the JSON report the document
//! is hand-rolled — no serde.
//!
//! [`validate_sarif`] is the offline counterpart of
//! `aggsky_obs::prom::validate_prometheus`: a structural check against the
//! parts of the SARIF 2.1.0 schema we emit (version string, run/tool/driver
//! shape, ruleId ↔ rules-array consistency, relative artifact URIs,
//! 1-based regions), backed by a miniature recursive-descent JSON parser so
//! no network or external schema tooling is needed.

use crate::report::{json_str, Report};
use crate::rules::Finding;

/// The SARIF spec version this exporter targets.
pub const SARIF_VERSION: &str = "2.1.0";

/// Canonical schema URI recorded in the document (informational only; the
/// validator never fetches it).
pub const SARIF_SCHEMA: &str =
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/sarif-schema-2.1.0.json";

/// Short descriptions for the rule metadata table. Rules picked up from
/// findings but missing here fall back to their id.
const RULE_DESCRIPTIONS: &[(&str, &str)] = &[
    ("L1-panic", "no panicking constructs in library code"),
    ("L1-index", "no unchecked indexing in library code"),
    ("L2-float", "no raw float comparisons; use the workspace total-order helpers"),
    ("L3-cast", "no truncating numeric casts"),
    ("L4-layering", "crate dependencies must follow the layering DAG"),
    ("L5-determinism", "counting paths must stay deterministic"),
    ("L6-wallclock", "no stray wall-clock reads outside the sanctioned clock"),
    ("L7-unsafe", "`unsafe` is confined to the sanctioned SIMD module"),
    ("L8-atomics", "every atomic ordering site needs a written happens-before justification"),
    ("L9-budget", "counting-path compare calls must charge the tick budget"),
    ("L10-spans", "obs span enters must be balanced by exits in the same function"),
    ("L11-silent-drop", "no silently discarded Result/Outcome values in library code"),
];

/// Renders the report as a SARIF 2.1.0 document with a single run.
pub fn to_sarif(report: &Report) -> String {
    let mut rules: Vec<&str> =
        report.active.iter().chain(report.suppressed.iter()).map(|f| f.rule).collect();
    rules.sort_unstable();
    rules.dedup();

    let mut out = String::from("{\n");
    out.push_str(&format!("  \"$schema\": {},\n", json_str(SARIF_SCHEMA)));
    out.push_str(&format!("  \"version\": {},\n", json_str(SARIF_VERSION)));
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"aggsky-lint\",\n");
    out.push_str("          \"informationUri\": \"https://example.invalid/aggsky\",\n");
    out.push_str("          \"rules\": [");
    for (i, id) in rules.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let desc = RULE_DESCRIPTIONS.iter().find(|(rid, _)| rid == id).map_or(*id, |(_, d)| *d);
        out.push_str(&format!(
            "\n            {{\"id\": {}, \"name\": {}, \"shortDescription\": {{\"text\": {}}}}}",
            json_str(id),
            json_str(&rule_name(id)),
            json_str(desc),
        ));
    }
    if !rules.is_empty() {
        out.push_str("\n          ");
    }
    out.push_str("]\n        }\n      },\n");
    out.push_str("      \"columnKind\": \"utf16CodeUnits\",\n");
    out.push_str("      \"results\": [");
    let mut first = true;
    for f in &report.active {
        push_result(&mut out, &rules, f, "error", false, &mut first);
    }
    for f in &report.suppressed {
        push_result(&mut out, &rules, f, "note", true, &mut first);
    }
    if !first {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

/// SARIF rule names must look like identifiers; turn `L8-atomics` into
/// `L8Atomics`.
fn rule_name(id: &str) -> String {
    let mut name = String::with_capacity(id.len());
    let mut upper = true;
    for c in id.chars() {
        if c == '-' || c == '_' {
            upper = true;
        } else if upper {
            name.extend(c.to_uppercase());
            upper = false;
        } else {
            name.push(c);
        }
    }
    name
}

fn push_result(
    out: &mut String,
    rules: &[&str],
    f: &Finding,
    level: &str,
    suppressed: bool,
    first: &mut bool,
) {
    if !*first {
        out.push(',');
    }
    *first = false;
    let index = rules.iter().position(|r| *r == f.rule).unwrap_or(0);
    out.push_str(&format!(
        "\n        {{\"ruleId\": {}, \"ruleIndex\": {index}, \"level\": {}, ",
        json_str(f.rule),
        json_str(level),
    ));
    out.push_str(&format!("\"message\": {{\"text\": {}}}, ", json_str(&f.message)));
    out.push_str(&format!(
        "\"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}, \
         \"uriBaseId\": \"SRCROOT\"}}, \"region\": {{\"startLine\": {}}}}}}}]",
        json_str(&f.path),
        f.line,
    ));
    if suppressed {
        out.push_str(
            ", \"suppressions\": [{\"kind\": \"external\", \
             \"justification\": \"covered by lint-allowlist.txt\"}]",
        );
    }
    out.push('}');
}

// ---------------------------------------------------------------------------
// Structural validation
// ---------------------------------------------------------------------------

/// A parsed JSON value, just rich enough to validate our own output.
#[derive(Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (integer precision is enough for SARIF line numbers).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; key order preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses a JSON document. Errors carry a byte offset for debugging.
pub fn parse_json(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("expected `{word}` at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>().map(Value::Num).map_err(|_| format!("bad number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let esc = bytes.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        *pos += 4;
                        // Surrogates never appear in our own output; replace
                        // rather than fail so the validator stays total.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("unknown escape `\\{}`", other as char)),
                }
            }
            _ => {
                // Copy the full UTF-8 sequence starting here.
                let s = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
    Err("unterminated string".to_string())
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // consume `{`
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // consume `[`
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

/// Structurally validates a SARIF 2.1.0 document against the subset of the
/// schema this exporter emits. Entirely offline; mirrors
/// `validate_prometheus` in the obs crate.
pub fn validate_sarif(text: &str) -> Result<(), String> {
    let doc = parse_json(text)?;
    let version = doc.get("version").and_then(Value::as_str).ok_or("missing `version` string")?;
    if version != SARIF_VERSION {
        return Err(format!("version is {version:?}, expected {SARIF_VERSION:?}"));
    }
    doc.get("$schema").and_then(Value::as_str).ok_or("missing `$schema`")?;
    let runs = doc.get("runs").and_then(Value::as_arr).ok_or("missing `runs` array")?;
    if runs.is_empty() {
        return Err("`runs` is empty".to_string());
    }
    for (ri, run) in runs.iter().enumerate() {
        let driver = run
            .get("tool")
            .and_then(|t| t.get("driver"))
            .ok_or_else(|| format!("run {ri}: missing tool.driver"))?;
        let name = driver
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("run {ri}: missing driver name"))?;
        if name.is_empty() {
            return Err(format!("run {ri}: empty driver name"));
        }
        let rules = driver
            .get("rules")
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("run {ri}: missing driver rules"))?;
        let mut rule_ids: Vec<&str> = Vec::new();
        for (i, rule) in rules.iter().enumerate() {
            let id = rule
                .get("id")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("run {ri}: rule {i} missing id"))?;
            if rule_ids.contains(&id) {
                return Err(format!("run {ri}: duplicate rule id {id:?}"));
            }
            rule_ids.push(id);
        }
        let results = run
            .get("results")
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("run {ri}: missing results array"))?;
        for (i, result) in results.iter().enumerate() {
            validate_result(ri, i, result, &rule_ids)?;
        }
    }
    Ok(())
}

fn validate_result(ri: usize, i: usize, result: &Value, rule_ids: &[&str]) -> Result<(), String> {
    let at = format!("run {ri} result {i}");
    let rule_id =
        result.get("ruleId").and_then(Value::as_str).ok_or_else(|| format!("{at}: no ruleId"))?;
    let Some(expected_index) = rule_ids.iter().position(|r| *r == rule_id) else {
        return Err(format!("{at}: ruleId {rule_id:?} not in driver rules"));
    };
    if let Some(index) = result.get("ruleIndex").and_then(Value::as_num) {
        if index as usize != expected_index {
            return Err(format!(
                "{at}: ruleIndex {index} disagrees with rules array position {expected_index}"
            ));
        }
    }
    let level =
        result.get("level").and_then(Value::as_str).ok_or_else(|| format!("{at}: no level"))?;
    if !matches!(level, "error" | "warning" | "note" | "none") {
        return Err(format!("{at}: invalid level {level:?}"));
    }
    let message = result
        .get("message")
        .and_then(|m| m.get("text"))
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{at}: no message.text"))?;
    if message.is_empty() {
        return Err(format!("{at}: empty message.text"));
    }
    let locations = result
        .get("locations")
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("{at}: no locations"))?;
    if locations.is_empty() {
        return Err(format!("{at}: empty locations"));
    }
    for loc in locations {
        let physical =
            loc.get("physicalLocation").ok_or_else(|| format!("{at}: no physicalLocation"))?;
        let uri = physical
            .get("artifactLocation")
            .and_then(|a| a.get("uri"))
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{at}: no artifactLocation.uri"))?;
        if uri.starts_with('/') || uri.contains("://") {
            return Err(format!("{at}: artifact uri {uri:?} must be workspace-relative"));
        }
        let start = physical
            .get("region")
            .and_then(|r| r.get("startLine"))
            .and_then(Value::as_num)
            .ok_or_else(|| format!("{at}: no region.startLine"))?;
        if start < 1.0 || start.fract() != 0.0 {
            return Err(format!("{at}: startLine {start} must be a positive integer"));
        }
    }
    if let Some(suppressions) = result.get("suppressions").and_then(Value::as_arr) {
        for s in suppressions {
            let kind = s
                .get("kind")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("{at}: suppression without kind"))?;
            if !matches!(kind, "inSource" | "external") {
                return Err(format!("{at}: invalid suppression kind {kind:?}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allowlist::Entry;

    fn finding(rule: &'static str, path: &str, line: usize) -> Finding {
        Finding { rule, path: path.to_string(), line, message: format!("{rule} at {line}") }
    }

    fn sample_report() -> Report {
        Report {
            active: vec![
                finding("L8-atomics", "crates/core/src/x.rs", 10),
                finding("L11-silent-drop", "crates/obs/src/y.rs", 4),
            ],
            suppressed: vec![finding("L8-atomics", "crates/core/src/z.rs", 7)],
            stale: Vec::<Entry>::new(),
            files: 3,
        }
    }

    #[test]
    fn exporter_output_validates() {
        let sarif = to_sarif(&sample_report());
        validate_sarif(&sarif).unwrap();
    }

    #[test]
    fn empty_report_validates() {
        let report = Report { active: vec![], suppressed: vec![], stale: vec![], files: 0 };
        validate_sarif(&to_sarif(&report)).unwrap();
    }

    #[test]
    fn suppressed_findings_carry_external_suppressions() {
        let sarif = to_sarif(&sample_report());
        let doc = parse_json(&sarif).unwrap();
        let results = doc.get("runs").and_then(Value::as_arr).unwrap()[0]
            .get("results")
            .and_then(Value::as_arr)
            .unwrap();
        assert_eq!(results.len(), 3);
        let with_suppressions: Vec<_> =
            results.iter().filter(|r| r.get("suppressions").is_some()).collect();
        assert_eq!(with_suppressions.len(), 1);
        assert_eq!(
            with_suppressions[0].get("level").and_then(Value::as_str),
            Some("note"),
            "suppressed findings must not be errors"
        );
    }

    #[test]
    fn validator_rejects_wrong_version() {
        let sarif = to_sarif(&sample_report()).replace("2.1.0", "2.0.0");
        assert!(validate_sarif(&sarif).unwrap_err().contains("version"));
    }

    #[test]
    fn validator_rejects_unknown_rule_id() {
        let sarif = to_sarif(&sample_report())
            .replace("\"ruleId\": \"L8-atomics\"", "\"ruleId\": \"L99-bogus\"");
        assert!(validate_sarif(&sarif).unwrap_err().contains("L99-bogus"));
    }

    #[test]
    fn validator_rejects_absolute_uri() {
        let sarif = to_sarif(&sample_report()).replace("crates/obs/src/y.rs", "/abs/path.rs");
        assert!(validate_sarif(&sarif).unwrap_err().contains("workspace-relative"));
    }

    #[test]
    fn validator_rejects_zero_start_line() {
        let sarif = to_sarif(&sample_report()).replace("\"startLine\": 4", "\"startLine\": 0");
        assert!(validate_sarif(&sarif).unwrap_err().contains("startLine"));
    }

    #[test]
    fn json_parser_round_trips_escapes() {
        let v =
            parse_json(r#"{"a": "q\"b\\c\nd", "n": [1, 2.5, -3], "t": true, "z": null}"#).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_str), Some("q\"b\\c\nd"));
        assert_eq!(v.get("n").and_then(Value::as_arr).map(<[Value]>::len), Some(3));
        assert_eq!(v.get("t"), Some(&Value::Bool(true)));
        assert_eq!(v.get("z"), Some(&Value::Null));
    }

    #[test]
    fn json_parser_rejects_garbage() {
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("{} trailing").is_err());
    }

    #[test]
    fn rule_names_are_identifiers() {
        assert_eq!(rule_name("L8-atomics"), "L8Atomics");
        assert_eq!(rule_name("L11-silent-drop"), "L11SilentDrop");
    }
}
