//! Seeded L6 violations: wall-clock reads in ordinary library code, off
//! the counting paths. Only the `::now()` call sites are reads — the
//! import and the `Instant`-typed parameter must stay silent.

use std::time::{Instant, SystemTime};

pub fn bad_monotonic() -> Instant {
    Instant::now()
}

pub fn bad_wall() -> SystemTime {
    SystemTime::now()
}

pub fn fine(start: Instant) -> u64 {
    start.elapsed().as_secs()
}
