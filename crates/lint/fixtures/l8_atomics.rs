//! Seeded L8 violations: atomic memory-ordering sites. Every site is a
//! finding (real code carries them as line-pinned allowlist entries with a
//! happens-before justification); `Relaxed` outside the sanctioned counter
//! modules is forbidden outright. `cmp::Ordering` variants never match.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bad_relaxed(flag: &AtomicU64) -> u64 {
    flag.load(Ordering::Relaxed)
}

pub fn pinned_acquire(flag: &AtomicU64) -> u64 {
    flag.load(Ordering::Acquire)
}

pub fn pinned_release(flag: &AtomicU64) {
    flag.store(1, Ordering::Release);
}

pub fn pinned_rmw(flag: &AtomicU64) -> u64 {
    flag.fetch_add(1, Ordering::AcqRel)
}

pub fn pinned_seqcst(flag: &AtomicU64) -> u64 {
    flag.swap(2, Ordering::SeqCst)
}

pub fn cmp_ordering_is_not_atomic(o: std::cmp::Ordering) -> bool {
    o == std::cmp::Ordering::Less
}
