//! Seeded L1 violations; tests/fixtures.rs asserts the exact lines.

pub fn bad(v: &[f64], r: Result<f64, ()>) -> f64 {
    let first = v.first().unwrap();
    let second = r.expect("must be present");
    if v.is_empty() {
        panic!("empty input");
    }
    let third = v[2];
    first + second + third
}

pub fn unfinished() {
    todo!()
}

pub fn fine(v: &[f64], r: Result<f64, ()>) -> f64 {
    r.unwrap_or(0.0) + v.first().copied().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        let v = [1.0];
        let _ = v[0];
        Result::<f64, ()>::Err(()).unwrap();
    }
}
