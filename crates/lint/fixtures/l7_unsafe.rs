//! Seeded L7 violations: `unsafe` in ordinary library code. The rule
//! flags every occurrence of the keyword — the block, the function
//! signature, and the impl — regardless of what the unsafe code does;
//! only the sanctioned SIMD modules may carry (line-pinned) occurrences.

pub fn bad_block(p: *const i64) -> i64 {
    unsafe { *p }
}

pub unsafe fn bad_fn(p: *const i64) -> i64 {
    *p
}

pub struct Wrapper(pub i64);

unsafe impl Send for Wrapper {}

pub fn fine(x: i64) -> i64 {
    x.wrapping_add(1)
}
