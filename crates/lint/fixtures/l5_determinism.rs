//! Seeded L5 violations: analyzed as if it lived on a counting path
//! (`crates/core/src/algorithms/`).

use std::time::Instant;

pub fn bad() -> u64 {
    let start = Instant::now();
    std::thread::sleep(std::time::Duration::from_millis(1));
    let _ = std::env::var("AGGSKY_THREADS");
    start.elapsed().as_secs()
}
