//! Seeded L10 violation: an obs span entered but never exited in the same
//! function. Balanced pairs, `*_span` delegation helpers, and `SpanGuard`
//! RAII bindings are all legal exits.

pub fn bad_unbalanced(rec: &Recorder) {
    let span = rec.span_start("work", 0, 0);
    do_work(span);
}

pub fn good_balanced(rec: &Recorder) {
    let span = rec.span_start("work", 0, 0);
    do_work(span);
    rec.span_end(span, 0, &[]);
}

pub fn good_delegated(rec: &Recorder, kernel: &Kernel) {
    let span = rec.span_start("prepare", 0, 0);
    end_prepare_span(span, kernel, rec);
}

pub fn good_raii(rec: &Recorder) {
    let _guard = SpanGuard::enter(rec, "work");
    do_work(0);
}
