//! Seeded L4 violation: analyzed as if it lived in `crates/spatial/src/`,
//! the crate at the bottom of the layering DAG.

use aggsky_core::Gamma;

pub fn bad(g: Gamma) -> f64 {
    g.value()
}
