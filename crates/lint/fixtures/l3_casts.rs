//! Seeded L3 violations; tests/fixtures.rs asserts the exact lines.

pub fn bad(n: usize, x: f64) -> u64 {
    let wide = n as u64;
    let trunc = x as u32;
    let byte = n as u8;
    wide + u64::from(trunc) + u64::from(byte)
}

pub fn fine(n: u32, x: f64) -> (u128, f64) {
    (u128::from(n), x + f64::from(n))
}
