//! Seeded L9 violations: counting-path functions that call a compare
//! primitive without referencing the RunContext/Stats tick-charging API —
//! code paths that would count record pairs for free.

pub fn bad_free_count(groups: &[Vec<i64>]) -> u64 {
    let mut n = 0;
    for s in groups {
        if dominates(s, s) {
            n += 1;
        }
    }
    n
}

pub fn bad_method_count(kernel: &Kernel) -> u64 {
    kernel.compare_bounded(0, 1)
}

pub fn good_charged(kernel: &Kernel, stats: &mut Stats) -> u64 {
    kernel.compare_cached(0, 1, stats)
}

pub fn good_polling(ctx: &RunContext) -> bool {
    ctx.poll(0).is_none() && dominates_keys(1, 2)
}

pub fn good_no_primitive(values: &[i64]) -> i64 {
    values.iter().copied().max().unwrap_or(0)
}
