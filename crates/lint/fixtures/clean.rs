//! A representative clean file: no rule fires, even on a counting path.

/// Sums the values without panicking paths, raw float ordering, or casts.
pub fn total(values: &[f64]) -> Option<f64> {
    let mut sum = 0.0;
    for v in values {
        sum += v;
    }
    values.first().map(|_| sum)
}
