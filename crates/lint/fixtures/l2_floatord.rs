//! Seeded L2 violations; tests/fixtures.rs asserts the exact lines.

use std::cmp::Ordering;

pub fn bad(p: f64, q: f64) -> bool {
    if p >= 1.0 {
        return true;
    }
    let _ = p.partial_cmp(&q);
    0.0 < q
}

pub struct Wrapped(pub f64);

impl PartialOrd for Wrapped {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.0.total_cmp(&other.0))
    }
}
