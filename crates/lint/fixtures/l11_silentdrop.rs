//! Seeded L11 violations: silently dropped outcomes — `let _ = <call>;`,
//! statement-position `.ok();`, and a discarded same-file `#[must_use]`
//! result. Bound or branched-on results are legal.

pub fn bad_let_drop(path: &str) {
    let _ = std::fs::remove_file(path);
}

pub fn bad_ok_statement(path: &str) {
    std::fs::remove_file(path).ok();
}

#[must_use]
pub fn outcome(x: u64) -> u64 {
    x.wrapping_add(1)
}

pub fn bad_must_use_drop() {
    outcome(3);
}

pub fn good_handled(path: &str) -> bool {
    std::fs::remove_file(path).is_ok()
}

pub fn good_bound_ok(path: &str) -> Option<String> {
    std::fs::read_to_string(path).ok()
}

pub fn good_let_binds_ok(value: Option<&str>) -> bool {
    let forced = parse_flag(value).ok();
    forced.is_some()
}

pub fn good_plain_discard(x: u64) {
    let _ = x;
}
