//! Fixture corpus: each seeded file must light up exactly the expected
//! rule ids and lines, the clean fixture must stay silent, the real
//! workspace must be clean under the committed allowlist, and the CLI must
//! report violations through its exit status.

use aggsky_lint::{allowlist, rules};
use std::path::{Path, PathBuf};

fn findings(path: &str, src: &str) -> Vec<(&'static str, usize)> {
    rules::analyze(path, src).into_iter().map(|f| (f.rule, f.line)).collect()
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

#[test]
fn l1_fixture_flags_panics_and_indexing() {
    assert_eq!(
        findings("crates/core/src/fixture_l1.rs", include_str!("../fixtures/l1_panics.rs")),
        vec![
            ("L1-panic", 4),  // .unwrap()
            ("L1-panic", 5),  // .expect(...)
            ("L1-panic", 7),  // panic!
            ("L1-index", 9),  // v[2]
            ("L1-panic", 14), // todo!
        ],
        "the unwrap_or family and the #[cfg(test)] module must not be flagged"
    );
}

#[test]
fn l2_fixture_flags_raw_float_ordering() {
    assert_eq!(
        findings("crates/core/src/fixture_l2.rs", include_str!("../fixtures/l2_floatord.rs")),
        vec![
            ("L2-floatord", 6),     // p >= 1.0
            ("L11-silent-drop", 9), // the fixture discards the partial_cmp result
            ("L2-floatord", 9),     // p.partial_cmp(&q)
            ("L2-floatord", 10),    // 0.0 < q
        ],
        "the `fn partial_cmp` trait-impl definition must not be flagged"
    );
}

#[test]
fn l2_fixture_is_exempt_in_sanctioned_module() {
    // Only the L2 rule is exempted in ord.rs; the fixture's seeded
    // `let _ = …` discard still trips L11 there.
    assert_eq!(
        findings("crates/core/src/ord.rs", include_str!("../fixtures/l2_floatord.rs")),
        vec![("L11-silent-drop", 9)]
    );
}

#[test]
fn l3_fixture_flags_truncating_casts() {
    assert_eq!(
        findings("crates/core/src/fixture_l3.rs", include_str!("../fixtures/l3_casts.rs")),
        vec![("L3-cast", 4), ("L3-cast", 5), ("L3-cast", 6)],
        "From/TryFrom conversions and widening to u128/f64 must not be flagged"
    );
}

#[test]
fn l4_fixture_flags_layering_violation() {
    assert_eq!(
        findings("crates/spatial/src/fixture_l4.rs", include_str!("../fixtures/l4_layering.rs")),
        vec![("L4-layering", 4)]
    );
    // The same import is legal one layer up.
    assert!(findings("crates/sql/src/fixture_l4.rs", include_str!("../fixtures/l4_layering.rs"))
        .is_empty());
}

#[test]
fn l5_fixture_flags_clock_sleep_and_env_on_counting_paths() {
    let counting = "crates/core/src/algorithms/fixture_l5.rs";
    assert_eq!(
        findings(counting, include_str!("../fixtures/l5_determinism.rs")),
        vec![
            ("L5-determinism", 4),  // use std::time::Instant
            ("L5-determinism", 7),  // Instant::now()
            ("L5-determinism", 8),  // thread::sleep
            ("L11-silent-drop", 9), // the fixture discards the env::var result
            ("L5-determinism", 9),  // std::env::var
        ]
    );
    // Off the counting paths (e.g. the stats module) L5 is silent, but the
    // workspace-wide L6 still catches the actual clock read (and L11 the
    // discarded env::var result).
    assert_eq!(
        findings("crates/core/src/stats.rs", include_str!("../fixtures/l5_determinism.rs")),
        vec![("L6-wallclock", 7), ("L11-silent-drop", 9)]
    );
}

#[test]
fn l6_fixture_flags_wallclock_reads_in_every_scanned_crate() {
    for path in ["crates/sql/src/fixture_l6.rs", "crates/obs/src/fixture_l6.rs"] {
        assert_eq!(
            findings(path, include_str!("../fixtures/l6_wallclock.rs")),
            vec![
                ("L6-wallclock", 8),  // Instant::now()
                ("L6-wallclock", 12), // SystemTime::now()
            ],
            "{path}: the import and the Instant-typed parameter must not be flagged"
        );
    }
    // On a counting path the stricter L5 owns the diagnosis instead.
    let counting = findings(
        "crates/core/src/algorithms/fixture_l6.rs",
        include_str!("../fixtures/l6_wallclock.rs"),
    );
    assert!(
        counting.iter().all(|(rule, _)| *rule == "L5-determinism") && !counting.is_empty(),
        "expected only L5 findings on a counting path, got {counting:?}"
    );
}

#[test]
fn l7_fixture_flags_every_unsafe_token() {
    assert_eq!(
        findings("crates/core/src/fixture_l7.rs", include_str!("../fixtures/l7_unsafe.rs")),
        vec![
            ("L7-unsafe", 7),  // unsafe { *p }
            ("L7-unsafe", 10), // pub unsafe fn
            ("L7-unsafe", 16), // unsafe impl Send
        ],
        "safe code must stay silent; every unsafe keyword must be flagged"
    );
    // The sanctioned SIMD module still surfaces the findings (they are
    // carried by line-pinned allowlist entries, not silenced by the rule).
    assert_eq!(
        findings("crates/core/src/simd.rs", include_str!("../fixtures/l7_unsafe.rs")).len(),
        3
    );
}

#[test]
fn l8_fixture_flags_every_atomic_ordering_site() {
    assert_eq!(
        findings("crates/core/src/fixture_l8.rs", include_str!("../fixtures/l8_atomics.rs")),
        vec![
            ("L8-atomics", 9),  // Ordering::Relaxed (forbidden outright here)
            ("L8-atomics", 13), // Ordering::Acquire
            ("L8-atomics", 17), // Ordering::Release
            ("L8-atomics", 21), // Ordering::AcqRel
            ("L8-atomics", 25), // Ordering::SeqCst
        ],
        "the use-import and cmp::Ordering::Less must not be flagged"
    );
}

#[test]
fn l8_relaxed_is_forbidden_outside_sanctioned_counter_modules() {
    let outside =
        rules::analyze("crates/core/src/fixture_l8.rs", include_str!("../fixtures/l8_atomics.rs"));
    let relaxed = outside.iter().find(|f| f.line == 9).unwrap();
    assert!(
        relaxed.message.contains("forbidden"),
        "Relaxed outside a sanctioned module must not invite allowlisting: {}",
        relaxed.message
    );
    // In a sanctioned counter module the same site is pinnable instead.
    let sanctioned =
        rules::analyze("crates/obs/src/metrics.rs", include_str!("../fixtures/l8_atomics.rs"));
    let relaxed = sanctioned.iter().find(|f| f.line == 9).unwrap();
    assert!(relaxed.message.contains("happens-before"), "unexpected: {}", relaxed.message);
}

#[test]
fn l9_fixture_flags_uncharged_compare_primitives_on_counting_paths() {
    let counting = "crates/core/src/algorithms/fixture_l9.rs";
    assert_eq!(
        findings(counting, include_str!("../fixtures/l9_budget.rs")),
        vec![
            ("L9-budget", 8),  // dominates(...) in a Stats-free function
            ("L9-budget", 16), // kernel.compare_bounded(...) likewise
        ],
        "functions referencing Stats/poll and primitive-free functions must not be flagged"
    );
    // Off the counting paths the rule does not apply.
    assert!(
        findings("crates/core/src/stats.rs", include_str!("../fixtures/l9_budget.rs")).is_empty()
    );
}

#[test]
fn l10_fixture_flags_unbalanced_spans_only() {
    assert_eq!(
        findings("crates/obs/src/fixture_l10.rs", include_str!("../fixtures/l10_spans.rs")),
        vec![("L10-spans", 6)],
        "balanced, *_span-delegated, and SpanGuard functions must not be flagged"
    );
}

#[test]
fn l11_fixture_flags_silent_drops_only() {
    assert_eq!(
        findings("crates/sql/src/fixture_l11.rs", include_str!("../fixtures/l11_silentdrop.rs")),
        vec![
            ("L11-silent-drop", 6),  // let _ = <call>;
            ("L11-silent-drop", 10), // statement .ok();
            ("L11-silent-drop", 19), // discarded #[must_use] result
        ],
        "bound, branched-on, and let-bound .ok() results must not be flagged"
    );
}

#[test]
fn clean_fixture_has_no_findings() {
    // Analyzed on a counting path, where the most rules apply.
    assert!(findings("crates/core/src/algorithms/clean.rs", include_str!("../fixtures/clean.rs"))
        .is_empty());
}

#[test]
fn allowlist_suppresses_pinned_and_file_wide_entries() {
    let found =
        rules::analyze("crates/core/src/fixture_l1.rs", include_str!("../fixtures/l1_panics.rs"));
    let entries = allowlist::parse(
        "L1-panic crates/core/src/fixture_l1.rs\n\
         L1-index crates/core/src/fixture_l1.rs:9\n\
         L2-floatord crates/core/src/never.rs # covers nothing -> stale\n",
    )
    .unwrap();
    let (active, suppressed, stale) = allowlist::apply(found, &entries);
    assert!(active.is_empty(), "all five seeded findings should be suppressed: {active:?}");
    assert_eq!(suppressed.len(), 5);
    assert_eq!(stale.len(), 1);
    assert_eq!(stale[0].path, "crates/core/src/never.rs");
}

#[test]
fn workspace_is_clean_under_committed_allowlist() {
    let root = workspace_root();
    let allow =
        std::fs::read_to_string(root.join("lint-allowlist.txt")).expect("committed allowlist");
    let report = aggsky_lint::run(&root, &allow).expect("lint run succeeds");
    assert!(report.is_clean(), "active findings: {:#?}", report.active);
    assert!(report.stale.is_empty(), "stale allowlist entries: {:#?}", report.stale);
}

#[test]
fn workspace_without_allowlist_sees_the_suppressed_debt() {
    // Guards against the linter silently scanning nothing and reporting a
    // vacuous pass: with the allowlist disabled, the grandfathered sites
    // must surface as active findings.
    let report = aggsky_lint::run(&workspace_root(), "").expect("lint run succeeds");
    assert!(report.files > 40, "expected the four library crates, got {} files", report.files);
    assert!(!report.active.is_empty());
    assert!(report.suppressed.is_empty());
}

#[test]
fn cli_exits_nonzero_on_seeded_violations_and_zero_when_allowlisted() {
    // A minimal fake workspace: the scanned crate src dirs, one of which
    // contains the seeded L1 fixture.
    let dir = std::env::temp_dir().join(format!("aggsky-lint-fixture-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    for krate in aggsky_lint::SCANNED_CRATES {
        std::fs::create_dir_all(dir.join("crates").join(krate).join("src")).unwrap();
    }
    std::fs::write(dir.join("crates/core/src/bad.rs"), include_str!("../fixtures/l1_panics.rs"))
        .unwrap();

    let bin = env!("CARGO_BIN_EXE_aggsky-lint");
    let run = |args: &[&str]| {
        std::process::Command::new(bin)
            .arg("--root")
            .arg(&dir)
            .args(args)
            .output()
            .expect("spawn aggsky-lint")
    };

    let out = run(&["--quiet"]);
    assert_eq!(out.status.code(), Some(1), "seeded violations must fail the run");

    std::fs::write(dir.join("lint-allowlist.txt"), "* crates/core/src/bad.rs\n").unwrap();
    let out = run(&["--quiet"]);
    assert_eq!(out.status.code(), Some(0), "allowlisted violations must pass");

    let json_path = dir.join("report.json");
    let out = run(&["--quiet", "--json", json_path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains("\"active_count\": 0"), "unexpected report: {json}");
    assert!(json.contains("\"suppressed_count\": 5"), "unexpected report: {json}");

    // The SARIF log is validated before writing and must carry the
    // suppressed findings as external suppressions.
    let sarif_path = dir.join("report.sarif");
    let out = run(&["--quiet", "--sarif", sarif_path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    let sarif = std::fs::read_to_string(&sarif_path).unwrap();
    aggsky_lint::sarif::validate_sarif(&sarif).expect("CLI SARIF output is structurally valid");
    assert!(sarif.contains("\"kind\": \"external\""), "unexpected SARIF: {sarif}");

    // A stale allowlist entry is a hard failure, not a warning.
    std::fs::write(
        dir.join("lint-allowlist.txt"),
        "* crates/core/src/bad.rs\nL6-wallclock crates/core/src/gone.rs\n",
    )
    .unwrap();
    let out = run(&[]);
    assert_eq!(out.status.code(), Some(1), "stale allowlist entries must fail the run");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("stale allowlist entry"), "stderr: {stderr}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn workspace_sarif_export_is_valid_and_carries_the_suppressed_debt() {
    let root = workspace_root();
    let allow =
        std::fs::read_to_string(root.join("lint-allowlist.txt")).expect("committed allowlist");
    let report = aggsky_lint::run(&root, &allow).expect("lint run succeeds");
    let sarif = aggsky_lint::sarif::to_sarif(&report);
    aggsky_lint::sarif::validate_sarif(&sarif).expect("workspace SARIF is structurally valid");
    // The grandfathered debt must be visible in the artifact: every
    // suppressed finding becomes a note-level result with a suppression.
    assert!(report.suppressed.len() > 100, "expected a substantial suppressed corpus");
    assert_eq!(sarif.matches("\"kind\": \"external\"").count(), report.suppressed.len());
    assert_eq!(sarif.matches("\"level\": \"error\"").count(), report.active.len());
}
