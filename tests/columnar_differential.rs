//! Differential suite for the columnar straddle kernel: the lane-based
//! bitmask path must be *bit-identical* to the row-wise blocked path — same
//! verdicts, same `n12`/`n21`, same `Stats` — and both must agree with the
//! unblocked per-record ground truth, for every `PairOptions` combination,
//! across dimensionalities on both sides of the monomorphized range
//! (d ∈ {1, 2, 5, 8, 9}; 2..=8 run the fixed-arity kernels, 1 and 9 the
//! dynamic fallback), with ragged group sizes so edge blocks exercise the
//! sentinel padding.

use aggsky::core::kernel::{
    compare_groups_blocked, compare_groups_columnar, count_pairs, Kernel, KernelConfig,
};
use aggsky::core::paircount::{compare_groups, PairOptions};
use aggsky::core::prepared::{PreparedDataset, MAX_LANE_BLOCK};
use aggsky::core::{DominationMatrix, Mbb, Stats};
use aggsky::datagen::Rng64;
use aggsky::{AlgoOptions, Algorithm, Gamma, GroupedDataset, GroupedDatasetBuilder};

const DIMS: [usize; 5] = [1, 2, 5, 8, 9];
const BLOCK_SIZES: [usize; 3] = [1, 5, 64];

/// Random integer-grid dataset with ragged group sizes: small coordinate
/// range maximizes ties and exact-dominance edges, and lengths straddling
/// block boundaries leave partially filled (sentinel-padded) edge blocks at
/// every tested block size.
fn dataset(dim: usize, seed: u64) -> GroupedDataset {
    let mut rng = Rng64::new(seed.wrapping_mul(0x9E37_79B9).wrapping_add(dim as u64));
    let mut b = GroupedDatasetBuilder::new(dim).trusted_labels();
    for g in 0..5 {
        let len = 1 + rng.index(13);
        let rows: Vec<Vec<f64>> =
            (0..len).map(|_| (0..dim).map(|_| rng.index(4) as f64).collect()).collect();
        b.push_group(format!("g{g}"), &rows).unwrap();
    }
    b.build().unwrap()
}

fn all_pair_options() -> Vec<PairOptions> {
    let mut out = Vec::new();
    for stop_rule in [false, true] {
        for need_bar in [false, true] {
            for corrected_bar in [false, true] {
                out.push(PairOptions { stop_rule, need_bar, corrected_bar });
            }
        }
    }
    out
}

fn ones(m: &DominationMatrix) -> u64 {
    let mut n = 0;
    for i in 0..m.rows() {
        for j in 0..m.cols() {
            n += m.get(i, j) as u64;
        }
    }
    n
}

/// Verdicts AND `Stats` of the columnar kernel equal the row-wise blocked
/// kernel bit for bit, and verdicts equal the unblocked reference, for
/// every dimension, block size, option set, and box configuration.
#[test]
fn columnar_is_bit_identical_to_row_wise_and_agrees_with_exhaustive() {
    for dim in DIMS {
        for seed in 0..4u64 {
            let ds = dataset(dim, seed);
            let gamma = Gamma::new([0.5, 0.75, 0.9, 1.0][(seed % 4) as usize]).unwrap();
            let boxes = Mbb::of_all_groups(&ds);
            for block_size in BLOCK_SIZES {
                let prep = PreparedDataset::build(&ds, block_size).unwrap();
                assert!(prep.lanes_enabled(), "d={dim} bs={block_size}");
                for g1 in ds.group_ids() {
                    for g2 in (g1 + 1)..ds.n_groups() {
                        for opts in all_pair_options() {
                            for use_boxes in [false, true] {
                                let pair_boxes = use_boxes.then(|| (&boxes[g1], &boxes[g2]));
                                let tag = format!(
                                    "d={dim} seed={seed} bs={block_size} {g1}v{g2} {opts:?} \
                                     boxes={use_boxes}"
                                );
                                let mut s_col = Stats::default();
                                let mut s_row = Stats::default();
                                let mut s_ref = Stats::default();
                                let columnar = compare_groups_columnar(
                                    &prep, g1, g2, gamma, pair_boxes, opts, &mut s_col,
                                );
                                let row_wise = compare_groups_blocked(
                                    &prep, g1, g2, gamma, pair_boxes, opts, &mut s_row,
                                );
                                let reference = compare_groups(
                                    &ds, g1, g2, gamma, pair_boxes, opts, &mut s_ref,
                                );
                                assert_eq!(columnar, row_wise, "verdict drift: {tag}");
                                assert_eq!(columnar, reference, "vs exhaustive: {tag}");
                                assert_eq!(s_col, s_row, "stats drift: {tag}");
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Exact tallies: the columnar `count_pairs` equals the domination-matrix
/// ones-count in both directions, at every dimension and block size.
#[test]
fn columnar_counts_match_domination_matrix() {
    for dim in DIMS {
        for seed in 0..3u64 {
            let ds = dataset(dim, seed);
            for block_size in BLOCK_SIZES {
                let prep = PreparedDataset::build(&ds, block_size).unwrap();
                for g1 in ds.group_ids() {
                    for g2 in ds.group_ids() {
                        if g1 == g2 {
                            continue;
                        }
                        let mut stats = Stats::default();
                        let (n12, n21) = count_pairs(&prep, g1, g2, &mut stats);
                        assert_eq!(
                            n12,
                            ones(&DominationMatrix::build(&ds, g1, g2)),
                            "d={dim} seed={seed} bs={block_size} {g1} over {g2}"
                        );
                        assert_eq!(
                            n21,
                            ones(&DominationMatrix::build(&ds, g2, g1)),
                            "d={dim} seed={seed} bs={block_size} {g2} over {g1}"
                        );
                    }
                }
            }
        }
    }
}

/// Sentinel padding: a group one record longer than the maximum lane block
/// leaves a 63/64-padded edge block; the padded lanes must contribute
/// nothing to either tally or to the work counters.
#[test]
fn sentinel_padded_edge_blocks_change_nothing() {
    for dim in [1, 2, 5, 8, 9] {
        let mut rng = Rng64::new(7_000 + dim as u64);
        let mut b = GroupedDatasetBuilder::new(dim).trusted_labels();
        for (g, len) in [MAX_LANE_BLOCK + 1, 1, MAX_LANE_BLOCK - 1].iter().enumerate() {
            let rows: Vec<Vec<f64>> =
                (0..*len).map(|_| (0..dim).map(|_| rng.index(3) as f64).collect()).collect();
            b.push_group(format!("g{g}"), &rows).unwrap();
        }
        let ds = b.build().unwrap();
        let prep = PreparedDataset::build(&ds, MAX_LANE_BLOCK).unwrap();
        let gamma = Gamma::new(0.75).unwrap();
        let opts = PairOptions { stop_rule: false, need_bar: true, corrected_bar: true };
        for g1 in ds.group_ids() {
            for g2 in (g1 + 1)..ds.n_groups() {
                let mut s_col = Stats::default();
                let mut s_row = Stats::default();
                let columnar =
                    compare_groups_columnar(&prep, g1, g2, gamma, None, opts, &mut s_col);
                let row_wise = compare_groups_blocked(&prep, g1, g2, gamma, None, opts, &mut s_row);
                assert_eq!(columnar, row_wise, "d={dim} {g1}v{g2}");
                assert_eq!(s_col, s_row, "d={dim} {g1}v{g2}");
                let (n12, n21) = count_pairs(&prep, g1, g2, &mut Stats::default());
                assert_eq!(n12, ones(&DominationMatrix::build(&ds, g1, g2)), "d={dim}");
                assert_eq!(n21, ones(&DominationMatrix::build(&ds, g2, g1)), "d={dim}");
            }
        }
    }
}

/// End to end: every evaluated algorithm returns the same skyline, the same
/// verdict-relevant `Stats`, under all three kernel configurations; blocked
/// and columnar runs are bit-identical in their work counters too.
#[test]
fn algorithms_agree_across_all_three_kernels() {
    for dim in [2, 5] {
        for seed in 20..24u64 {
            let ds = dataset(dim, seed);
            let gamma = Gamma::new(0.75).unwrap();
            for algo in Algorithm::EVALUATED {
                let base = AlgoOptions::exact(gamma);
                let ex = algo
                    .run_with(&ds, AlgoOptions { kernel: KernelConfig::Exhaustive, ..base })
                    .unwrap();
                let bl = algo
                    .run_with(&ds, AlgoOptions { kernel: KernelConfig::blocked(), ..base })
                    .unwrap();
                let col = algo
                    .run_with(&ds, AlgoOptions { kernel: KernelConfig::columnar(), ..base })
                    .unwrap();
                assert_eq!(ex.skyline, bl.skyline, "{algo:?} d={dim} seed={seed}");
                assert_eq!(bl.skyline, col.skyline, "{algo:?} d={dim} seed={seed}");
                assert_eq!(bl.stats, col.stats, "{algo:?} d={dim} seed={seed}: stats drift");
            }
        }
    }
}

/// The columnar kernel dispatcher rejects lane-incompatible block sizes
/// instead of silently falling back.
#[test]
fn columnar_kernel_config_requires_lane_sized_blocks() {
    let ds = dataset(3, 1);
    assert!(Kernel::new(&ds, KernelConfig::Columnar { block_size: MAX_LANE_BLOCK + 1 }).is_err());
    assert!(Kernel::new(&ds, KernelConfig::Columnar { block_size: 0 }).is_err());
    assert!(Kernel::new(&ds, KernelConfig::Columnar { block_size: MAX_LANE_BLOCK }).is_ok());
}
