//! Seeded fuzz-style corruption suite for the persist layer.
//!
//! Mutates committed frame files — random single-byte flips and random
//! prefix truncations — and asserts the recovery contract: every mutation
//! is either *detected* (the store degrades past the frame, or to a cold
//! start) or the recovered snapshot is *byte-identical* to the pristine
//! one. There is no third outcome: no panic, no silently different resume
//! state.

use aggsky::core::paircache::PairCache;
use aggsky::core::persist::{frame, CheckpointStore, Fingerprint, PairEntry, Snapshot};
use aggsky::core::prepared::PreparedDataset;
use aggsky::core::{anytime_skyline, run_durable, CachedTally, Gamma, GroupedDataset};
use aggsky_datagen::{Distribution, SyntheticConfig};

fn dataset(seed: u64) -> GroupedDataset {
    SyntheticConfig {
        n_records: 90,
        n_groups: 9,
        dim: 3,
        seed,
        ..SyntheticConfig::paper_default(Distribution::AntiCorrelated)
    }
    .generate()
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("aggsky-corrupt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The newest committed frame file in `dir`.
fn newest_frame(dir: &std::path::Path) -> std::path::PathBuf {
    let mut frames: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "agsk"))
        .collect();
    frames.sort();
    frames.pop().expect("no frame committed")
}

/// splitmix64, the repo's standard seeded generator for tests.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[test]
fn every_mutation_is_detected_or_harmless() {
    let ds = dataset(7);
    let dir = tmpdir("fuzz");
    let store = CheckpointStore::open(&dir).unwrap();
    run_durable(&ds, Gamma::DEFAULT, u64::MAX, &store).unwrap();
    let frame_path = newest_frame(&dir);
    let pristine_bytes = std::fs::read(&frame_path).unwrap();
    let pristine = frame::decode_snapshot(frame::decode_frame(&pristine_bytes).unwrap()).unwrap();

    let mut rng = 0xF00D_u64;
    let mut detected = 0usize;
    let mut harmless = 0usize;
    for trial in 0..300 {
        let mut mutated = pristine_bytes.clone();
        if trial % 5 == 4 {
            // Random prefix truncation (including empty files).
            let keep = (splitmix64(&mut rng) as usize) % mutated.len();
            mutated.truncate(keep);
        } else {
            // Random single-byte XOR with a random non-zero mask.
            let pos = (splitmix64(&mut rng) as usize) % mutated.len();
            let mask = (splitmix64(&mut rng) % 255 + 1) as u8;
            mutated[pos] ^= mask;
        }
        std::fs::write(&frame_path, &mutated).unwrap();

        let recovery = store
            .load()
            .unwrap_or_else(|e| panic!("trial {trial}: load must degrade, not fail hard: {e}"));
        match recovery.snapshot {
            Some((_, snap)) => {
                // Only acceptable if the recovered state is bit-identical
                // to the pristine snapshot (e.g. an older intact frame, or
                // a mutation the checksum provably cannot miss never hits
                // this arm with different content).
                assert_eq!(
                    snap, pristine,
                    "trial {trial}: a mutated frame yielded *different* resume state"
                );
                harmless += 1;
            }
            None => {
                assert!(
                    !recovery.skipped.is_empty(),
                    "trial {trial}: cold start without reporting the skipped frame"
                );
                detected += 1;
            }
        }
    }
    assert!(detected > 0, "the fuzzer never produced a detectable corruption");
    // With a single frame on disk, a detectably mutated file can only cold
    // start; "harmless" arms require the mutation to be semantically
    // invisible, which a CRC-covered byte flip never is. Count them anyway
    // so a retention change that adds fallback frames keeps this honest.
    assert_eq!(detected + harmless, 300);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mutated_newest_frame_degrades_to_the_older_one() {
    let ds = dataset(8);
    let dir = tmpdir("degrade");
    let store = CheckpointStore::open(&dir).unwrap();
    // Two chunks => two retained frames.
    let out = run_durable(&ds, Gamma::DEFAULT, 200, &store).unwrap();
    assert!(out.is_complete());
    let seqs = store.frames().unwrap();
    assert!(seqs.len() >= 2, "need at least two frames, got {seqs:?}");
    let newest = newest_frame(&dir);
    let mut bytes = std::fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x41;
    std::fs::write(&newest, &bytes).unwrap();
    let recovery = store.load().unwrap();
    let (seq, snap) = recovery.snapshot.expect("older frame must still recover");
    assert!(seq < *seqs.last().unwrap(), "recovered the corrupt newest frame");
    assert_eq!(recovery.skipped.len(), 1);
    assert!(snap.partition.is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn foreign_checkpoint_directory_is_refused_not_overwritten() {
    let ds1 = dataset(9);
    let ds2 = dataset(10);
    let dir = tmpdir("foreign");
    let store = CheckpointStore::open(&dir).unwrap();
    run_durable(&ds1, Gamma::DEFAULT, u64::MAX, &store).unwrap();
    let frames_before = store.frames().unwrap();
    let err = run_durable(&ds2, Gamma::DEFAULT, u64::MAX, &store).unwrap_err();
    assert!(
        matches!(err, aggsky::core::Error::CheckpointMismatch(_)),
        "foreign dataset must be a typed mismatch, got: {err}"
    );
    assert_eq!(store.frames().unwrap(), frames_before, "the refusal must not write");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unrelated_files_in_the_directory_are_ignored() {
    let ds = dataset(11);
    let dir = tmpdir("garbage");
    let store = CheckpointStore::open(&dir).unwrap();
    std::fs::write(dir.join("frame-000001.tmp"), b"half a frame from a dead process").unwrap();
    std::fs::write(dir.join("notes.txt"), b"operator scribbles").unwrap();
    std::fs::write(dir.join("frame-xyz.agsk"), b"unparseable name").unwrap();
    let full = anytime_skyline(&ds, Gamma::DEFAULT, u64::MAX);
    let out = run_durable(&ds, Gamma::DEFAULT, 250, &store).unwrap();
    assert_eq!(out.result, full, "garbage files changed the durable result");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pair_cache_tallies_round_trip_through_a_frame() {
    let ds = dataset(12);
    let prep = PreparedDataset::build(&ds, 8).unwrap();
    let mut cache = PairCache::new();
    let total = |lo: usize, hi: usize| {
        aggsky::core::num::pair_count(prep.group_len(lo), prep.group_len(hi)).unwrap()
    };
    cache.store(0, 1, CachedTally { n12: 3, n21: 1, checked: 7, total: total(0, 1), cursor: 1 });
    cache.store(2, 5, CachedTally::fresh(total(2, 5)));
    let entries = cache.export();
    let snap = Snapshot {
        fingerprint: Fingerprint::of(&ds, Gamma::DEFAULT),
        partition: None,
        pairs: entries
            .iter()
            .map(|((lo, hi), tally)| PairEntry { lo: *lo, hi: *hi, tally: *tally })
            .collect(),
    };
    let bytes = frame::encode_frame(&frame::encode_snapshot(&snap));
    let decoded = frame::decode_snapshot(frame::decode_frame(&bytes).unwrap()).unwrap();
    assert_eq!(decoded, snap, "frame round-trip changed the pair tallies");
    let mut restored = PairCache::new();
    let restored_entries: Vec<_> = decoded.pairs.iter().map(|p| ((p.lo, p.hi), p.tally)).collect();
    assert_eq!(restored.ingest(&prep, &restored_entries).unwrap(), entries.len());
    assert_eq!(restored.export(), entries, "ingested tallies diverged from the originals");
}
