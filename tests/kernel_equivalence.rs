//! Equivalence of the blocked counting kernel with the per-pair ground
//! truth: on random, correlated and anticorrelated workloads, at every
//! block size, the kernel's exact pair counts must equal the
//! [`DominationMatrix`] ones-count, and its verdicts must match the
//! unblocked `compare_groups` for every `PairOptions` combination.

use aggsky::core::kernel::{compare_groups_blocked, count_pairs};
use aggsky::core::paircount::{compare_groups, PairOptions};
use aggsky::core::prepared::PreparedDataset;
use aggsky::core::{DominationMatrix, Mbb, Stats};
use aggsky::datagen::{Distribution, GroupSizes, Rng64, SyntheticConfig};
use aggsky::{Gamma, GroupedDataset, GroupedDatasetBuilder};

const BLOCK_SIZES: [usize; 3] = [1, 7, 64];

/// Small integer-grid dataset (maximizes ties and exact-dominance edges).
fn grid_dataset(seed: u64) -> GroupedDataset {
    let mut rng = Rng64::new(seed);
    let dim = 1 + rng.index(3);
    let mut b = GroupedDatasetBuilder::new(dim).trusted_labels();
    for g in 0..6 {
        let len = 1 + rng.index(9);
        let rows: Vec<Vec<f64>> =
            (0..len).map(|_| (0..dim).map(|_| rng.index(5) as f64).collect()).collect();
        b.push_group(format!("g{g}"), &rows).unwrap();
    }
    b.build().unwrap()
}

/// The paper's synthetic workloads, one small instance per distribution.
fn synthetic(dist: Distribution, seed: u64) -> GroupedDataset {
    SyntheticConfig {
        n_records: 90,
        n_groups: 6,
        dim: 3,
        distribution: dist,
        spread: 0.2,
        group_sizes: GroupSizes::Uniform,
        seed,
    }
    .generate()
}

fn workloads(seed: u64) -> Vec<(&'static str, GroupedDataset)> {
    vec![
        ("grid", grid_dataset(seed)),
        ("independent", synthetic(Distribution::Independent, seed)),
        ("correlated", synthetic(Distribution::Correlated, seed)),
        ("anticorrelated", synthetic(Distribution::AntiCorrelated, seed)),
    ]
}

fn ones(m: &DominationMatrix) -> u64 {
    let mut n = 0;
    for i in 0..m.rows() {
        for j in 0..m.cols() {
            n += m.get(i, j) as u64;
        }
    }
    n
}

fn all_pair_options() -> Vec<PairOptions> {
    let mut out = Vec::new();
    for stop_rule in [false, true] {
        for need_bar in [false, true] {
            for corrected_bar in [false, true] {
                out.push(PairOptions { stop_rule, need_bar, corrected_bar });
            }
        }
    }
    out
}

/// Kernel pair counts equal the domination-matrix ground truth on every
/// workload at every block size (including pathological block size 1).
#[test]
fn counts_match_domination_matrix() {
    for seed in 0..8u64 {
        for (name, ds) in workloads(seed) {
            for block_size in BLOCK_SIZES {
                let prep = PreparedDataset::build(&ds, block_size).unwrap();
                for g1 in ds.group_ids() {
                    for g2 in ds.group_ids() {
                        if g1 == g2 {
                            continue;
                        }
                        let mut stats = Stats::default();
                        let (n12, n21) = count_pairs(&prep, g1, g2, &mut stats);
                        assert_eq!(
                            n12,
                            ones(&DominationMatrix::build(&ds, g1, g2)),
                            "{name} seed={seed} bs={block_size} {g1} over {g2}"
                        );
                        assert_eq!(
                            n21,
                            ones(&DominationMatrix::build(&ds, g2, g1)),
                            "{name} seed={seed} bs={block_size} {g2} over {g1}"
                        );
                    }
                }
            }
        }
    }
}

/// Kernel verdicts equal the unblocked `compare_groups` under every
/// `PairOptions` combination, with and without bounding boxes.
#[test]
fn verdicts_match_unblocked_for_all_options() {
    for seed in 0..6u64 {
        for (name, ds) in workloads(seed) {
            let gamma = Gamma::new([0.5, 0.75, 1.0][(seed % 3) as usize]).unwrap();
            let boxes = Mbb::of_all_groups(&ds);
            for block_size in BLOCK_SIZES {
                let prep = PreparedDataset::build(&ds, block_size).unwrap();
                for g1 in ds.group_ids() {
                    for g2 in (g1 + 1)..ds.n_groups() {
                        for opts in all_pair_options() {
                            for use_boxes in [false, true] {
                                let pair_boxes = use_boxes.then(|| (&boxes[g1], &boxes[g2]));
                                let mut s1 = Stats::default();
                                let mut s2 = Stats::default();
                                let blocked = compare_groups_blocked(
                                    &prep, g1, g2, gamma, pair_boxes, opts, &mut s1,
                                );
                                let reference =
                                    compare_groups(&ds, g1, g2, gamma, pair_boxes, opts, &mut s2);
                                assert_eq!(
                                    blocked, reference,
                                    "{name} seed={seed} bs={block_size} {g1}v{g2} {opts:?} \
                                     boxes={use_boxes}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

/// The blocked kernel does strictly less record work than exhaustive
/// counting on a correlated workload (where sort-order pruning bites), while
/// remaining exact.
#[test]
fn blocked_kernel_reduces_record_comparisons() {
    let ds = synthetic(Distribution::Correlated, 99);
    let prep = PreparedDataset::build(&ds, 16).unwrap();
    let mut blocked_work = 0u64;
    let mut exhaustive_work = 0u64;
    for g1 in ds.group_ids() {
        for g2 in ds.group_ids() {
            if g1 == g2 {
                continue;
            }
            let mut stats = Stats::default();
            count_pairs(&prep, g1, g2, &mut stats);
            blocked_work += stats.records_compared;
            exhaustive_work += (ds.group_len(g1) * ds.group_len(g2)) as u64;
        }
    }
    assert!(
        blocked_work < exhaustive_work,
        "blocked {blocked_work} pairs tested vs exhaustive {exhaustive_work}"
    );
}
