//! Differential testing of the SQL surface against the core algorithms:
//! the paper's Algorithm 1 query, the native `SKYLINE OF` clauses, and the
//! record skyline must all agree with the core implementations on random
//! grouped data.

use aggsky::core::record_skyline::bnl;
use aggsky::core::{AlgoOptions, Algorithm, RunContext};
use aggsky::datagen::Rng64;
use aggsky::sql::{ColumnType, Database, Value};
use aggsky::{naive_skyline, Gamma, GroupedDataset, GroupedDatasetBuilder};

/// Random small dataset on an integer grid (ties included on purpose).
fn random_dataset(seed: u64, n_groups: usize, max_len: usize) -> GroupedDataset {
    let mut rng = Rng64::new(seed);
    let mut b = GroupedDatasetBuilder::new(2).trusted_labels();
    for g in 0..n_groups {
        let len = 1 + rng.index(max_len);
        let rows: Vec<Vec<f64>> =
            (0..len).map(|_| vec![rng.index(12) as f64, rng.index(12) as f64]).collect();
        b.push_group(format!("g{g}"), &rows).unwrap();
    }
    b.build().unwrap()
}

/// Loads a 2-D grouped dataset into a `movies(director, votes, rank, num)`
/// table, the shape Algorithm 1 expects.
fn load(ds: &GroupedDataset) -> Database {
    let mut db = Database::new();
    db.create_table(
        "movies",
        &[
            ("director", ColumnType::Text),
            ("votes", ColumnType::Float),
            ("rank", ColumnType::Float),
            ("num", ColumnType::Int),
        ],
    )
    .unwrap();
    let mut rows = Vec::new();
    for g in ds.group_ids() {
        for rec in ds.records(g) {
            rows.push(vec![
                Value::Str(ds.label(g).to_string()),
                Value::Float(rec[0]),
                Value::Float(rec[1]),
                Value::Int(ds.group_len(g) as i64),
            ]);
        }
    }
    db.insert_rows("movies", rows).unwrap();
    db
}

fn names(db: &mut Database, sql: &str) -> Vec<String> {
    let mut out: Vec<String> =
        db.execute(sql).unwrap().rows.into_iter().map(|r| r[0].to_string()).collect();
    out.sort();
    out
}

const ALGORITHM_1: &str = "select distinct director from movies where director not in (\
     select X.director from movies X, movies Y \
     where ((Y.votes > X.votes and Y.rank >= X.rank) or \
            (Y.votes >= X.votes and Y.rank > X.rank)) \
     group by X.director, Y.director \
     having 1.0*count(*)/(X.num*Y.num) > .5)";

#[test]
fn algorithm_1_matches_core_on_random_data() {
    for seed in 0..25 {
        let ds = random_dataset(seed, 8, 6);
        let mut db = load(&ds);
        let sql_names = names(&mut db, ALGORITHM_1);
        let oracle = naive_skyline(&ds, Gamma::DEFAULT);
        let mut core_names: Vec<String> =
            oracle.skyline.iter().map(|&g| ds.label(g).to_string()).collect();
        core_names.sort();
        assert_eq!(sql_names, core_names, "seed={seed}");
    }
}

#[test]
fn native_group_skyline_matches_core_on_random_data() {
    for seed in 100..125 {
        let ds = random_dataset(seed, 10, 5);
        let mut db = load(&ds);
        let sql_names = names(
            &mut db,
            "SELECT director FROM movies GROUP BY director SKYLINE OF votes MAX, rank MAX",
        );
        let oracle = naive_skyline(&ds, Gamma::DEFAULT);
        let mut core_names: Vec<String> =
            oracle.skyline.iter().map(|&g| ds.label(g).to_string()).collect();
        core_names.sort();
        assert_eq!(sql_names, core_names, "seed={seed}");
    }
}

#[test]
fn native_group_skyline_matches_core_at_other_gammas() {
    for seed in 200..210 {
        let ds = random_dataset(seed, 8, 5);
        let mut db = load(&ds);
        for gamma in [0.6, 0.8, 1.0] {
            let sql_names = names(
                &mut db,
                &format!(
                    "SELECT director FROM movies GROUP BY director \
                     SKYLINE OF votes MAX, rank MAX GAMMA {gamma}"
                ),
            );
            let oracle = naive_skyline(&ds, Gamma::new(gamma).unwrap());
            let mut core_names: Vec<String> =
                oracle.skyline.iter().map(|&g| ds.label(g).to_string()).collect();
            core_names.sort();
            assert_eq!(sql_names, core_names, "seed={seed} gamma={gamma}");
        }
    }
}

#[test]
fn record_skyline_clause_matches_bnl() {
    for seed in 300..320 {
        let mut rng = Rng64::new(seed);
        let n = 1 + rng.index(39);
        let rows: Vec<Vec<f64>> =
            (0..n).map(|_| vec![rng.index(10) as f64, rng.index(10) as f64]).collect();
        let mut db = Database::new();
        db.create_table(
            "t",
            &[("id", ColumnType::Int), ("a", ColumnType::Float), ("b", ColumnType::Float)],
        )
        .unwrap();
        let table_rows: Vec<Vec<Value>> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| vec![Value::Int(i as i64), Value::Float(r[0]), Value::Float(r[1])])
            .collect();
        db.insert_rows("t", table_rows).unwrap();
        let mut got: Vec<i64> = db
            .execute("SELECT id FROM t SKYLINE OF a MAX, b MAX")
            .unwrap()
            .rows
            .into_iter()
            .map(|r| match r[0] {
                Value::Int(i) => i,
                _ => unreachable!(),
            })
            .collect();
        got.sort_unstable();
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let expect: Vec<i64> = bnl(&flat, 2).into_iter().map(|i| i as i64).collect();
        assert_eq!(got, expect, "seed={seed}");
    }
}

/// Extracts `name = value` counter lines from an `EXPLAIN ANALYZE` report.
fn counter_of(report: &str, name: &str) -> u64 {
    report
        .lines()
        .find_map(|l| {
            let l = l.trim();
            l.strip_prefix(name)
                .and_then(|rest| rest.trim().strip_prefix('='))
                .and_then(|v| v.trim().parse::<u64>().ok())
        })
        .unwrap_or_else(|| panic!("counter {name} missing from report:\n{report}"))
}

#[test]
fn explain_analyze_totals_equal_plain_run_stats() {
    // The SQL executor builds its grouped dataset in group-discovery order,
    // which for `load` equals the core dataset's group order — so the
    // skyline step inside EXPLAIN ANALYZE performs exactly the work of the
    // same algorithm run directly, and the trace counters must match its
    // `Stats` field for field.
    for seed in 400..410 {
        let ds = random_dataset(seed, 9, 5);
        let mut db = load(&ds);
        let report: String = db
            .execute(
                "EXPLAIN ANALYZE SELECT director FROM movies \
                 GROUP BY director SKYLINE OF votes MAX, rank MAX",
            )
            .unwrap()
            .rows
            .into_iter()
            .map(|r| format!("{}\n", r[0]))
            .collect();
        let outcome = Algorithm::Indexed
            .run_ctx(&ds, AlgoOptions::exact(Gamma::DEFAULT), &RunContext::unlimited())
            .unwrap();
        let stats = *outcome.stats();
        assert_eq!(
            counter_of(&report, "aggsky_group_pairs_total"),
            stats.group_pairs,
            "seed={seed}\n{report}"
        );
        assert_eq!(
            counter_of(&report, "aggsky_record_pairs_total"),
            stats.record_pairs,
            "seed={seed}"
        );
        assert_eq!(
            counter_of(&report, "aggsky_index_candidates_total"),
            stats.index_candidates,
            "seed={seed}"
        );
        // The SQL layer's own counters are also present and exact.
        assert_eq!(counter_of(&report, "aggsky_sql_rows_scanned_total"), ds.n_records() as u64);
        assert_eq!(counter_of(&report, "aggsky_sql_groups_built_total"), ds.n_groups() as u64);
    }
}

#[test]
fn having_filter_composes_with_group_skyline() {
    // HAVING first prunes groups, then the skyline runs among survivors:
    // a group dominated only by a HAVING-removed group must reappear.
    let mut db = Database::new();
    db.create_table(
        "movies",
        &[
            ("director", ColumnType::Text),
            ("votes", ColumnType::Float),
            ("rank", ColumnType::Float),
        ],
    )
    .unwrap();
    db.insert_rows(
        "movies",
        vec![
            vec![Value::Str("big".into()), Value::Float(10.0), Value::Float(10.0)],
            vec![Value::Str("big".into()), Value::Float(11.0), Value::Float(11.0)],
            vec![Value::Str("mid".into()), Value::Float(5.0), Value::Float(5.0)],
        ],
    )
    .unwrap();
    let with_big = names(
        &mut db,
        "SELECT director FROM movies GROUP BY director SKYLINE OF votes MAX, rank MAX",
    );
    assert_eq!(with_big, vec!["big"]);
    let without_big = names(
        &mut db,
        "SELECT director FROM movies GROUP BY director \
         HAVING count(*) < 2 SKYLINE OF votes MAX, rank MAX",
    );
    assert_eq!(without_big, vec!["mid"], "mid reappears once big is HAVING-ed away");
}
