//! The cross-γ pair-count cache, end to end: a sweep over several
//! thresholds through one shared [`aggsky::core::PairCache`] must produce
//! exactly the skyline an independent uncached run produces at each γ, for
//! every algorithm that consults the kernel — and resumed or served tallies
//! must never be charged to the execution budget a second time.

use aggsky::core::{gamma_sweep, gamma_sweep_ctx, PairCache, PreparedDataset};
use aggsky::datagen::Rng64;
use aggsky::{AlgoOptions, Algorithm, Gamma, GroupedDataset, GroupedDatasetBuilder, RunContext};

const GAMMAS: [f64; 4] = [0.5, 0.6, 0.75, 0.9];

fn dataset(seed: u64) -> GroupedDataset {
    let mut rng = Rng64::new(seed);
    let dim = 2 + rng.index(2);
    let mut b = GroupedDatasetBuilder::new(dim).trusted_labels();
    for g in 0..9 {
        let len = 2 + rng.index(12);
        let rows: Vec<Vec<f64>> =
            (0..len).map(|_| (0..dim).map(|_| rng.index(6) as f64).collect()).collect();
        b.push_group(format!("g{g}"), &rows).unwrap();
    }
    b.build().unwrap()
}

/// Sweeping with the shared cache returns the same skyline as a fresh
/// uncached run at every γ, for every kernel-driven algorithm, and the
/// later runs actually serve memoized tallies.
#[test]
fn cached_sweep_matches_independent_runs() {
    for algorithm in
        [Algorithm::NestedLoop, Algorithm::Transitive, Algorithm::Sorted, Algorithm::Indexed]
    {
        for seed in 0..4u64 {
            let ds = dataset(1000 + seed);
            let gammas: Vec<Gamma> = GAMMAS.iter().map(|&g| Gamma::new(g).unwrap()).collect();
            let opts = AlgoOptions::exact(Gamma::DEFAULT);
            let swept = gamma_sweep(&ds, algorithm, &gammas, opts).unwrap();
            assert_eq!(swept.len(), gammas.len());
            let mut hits = 0;
            for (gamma, result) in &swept {
                let solo = algorithm.run_with(&ds, AlgoOptions { gamma: *gamma, ..opts }).unwrap();
                assert_eq!(result.skyline, solo.skyline, "{algorithm:?} seed={seed} γ={gamma}");
                hits += result.stats.cache_hits;
            }
            assert!(hits > 0, "{algorithm:?} seed={seed}: sweep never reused a tally");
        }
    }
}

/// The cache is also valid *across algorithms* on one dataset: tallies are
/// algorithm-independent, so a cache warmed by NL serves SI and IN without
/// changing their skylines.
#[test]
fn cache_is_shareable_across_algorithms() {
    for seed in 0..4u64 {
        let ds = dataset(2000 + seed);
        let prep = PreparedDataset::build(&ds, PreparedDataset::DEFAULT_BLOCK_SIZE).unwrap();
        let gamma = Gamma::new(0.75).unwrap();
        let opts = AlgoOptions::exact(gamma);
        let mut cache = PairCache::new();
        let warm = Algorithm::NestedLoop.run_cached(&ds, &prep, opts, &mut cache);
        assert!(!cache.is_empty(), "seed={seed}: NL memoized nothing");
        for algorithm in [Algorithm::Sorted, Algorithm::Indexed, Algorithm::Transitive] {
            let cached = algorithm.run_cached(&ds, &prep, opts, &mut cache);
            let solo = algorithm.run_with(&ds, opts).unwrap();
            assert_eq!(cached.skyline, solo.skyline, "{algorithm:?} seed={seed}");
            assert_eq!(cached.skyline, warm.skyline, "{algorithm:?} seed={seed}");
        }
    }
}

/// The *resume* path specifically: tightening γ can demand more evidence
/// than a looser run's stopped tally holds, so the kernel must pick the
/// count back up at the stored block cursor. These seeds are known to
/// produce resumptions (asserted, so the path cannot silently stop being
/// covered), and every resumed run's skyline must still equal a fresh
/// uncached run's.
#[test]
fn partial_tallies_resume_and_stay_exact() {
    let mut resumes = 0u64;
    for seed in 0..8u64 {
        let ds = dataset(seed);
        let gammas: Vec<Gamma> = GAMMAS.iter().map(|&g| Gamma::new(g).unwrap()).collect();
        let opts = AlgoOptions::exact(Gamma::DEFAULT);
        let outcome =
            gamma_sweep_ctx(&ds, Algorithm::NestedLoop, &gammas, opts, &RunContext::unlimited())
                .unwrap();
        for run in &outcome.runs {
            resumes += run.outcome.stats().cache_resumes;
            let solo = Algorithm::NestedLoop
                .run_with(&ds, AlgoOptions { gamma: run.gamma, ..opts })
                .unwrap();
            assert_eq!(
                run.outcome.clone().unwrap_or_partial().skyline,
                solo.skyline,
                "seed={seed} γ={}",
                run.gamma
            );
        }
    }
    assert!(resumes > 0, "fixture no longer exercises tally resumption");
}

/// Budget single-charging: repeating a threshold inside one sweep performs
/// (and charges) no fresh counting on the repeat — a budget sized for one
/// run completes both, and the repeat's fresh-work counters stay zero.
#[test]
fn resumed_tallies_are_never_double_charged() {
    for seed in 0..4u64 {
        let ds = dataset(3000 + seed);
        let gamma = Gamma::new(0.6).unwrap();
        // Same kernel configuration as the sweep itself, so the solo run's
        // tick count is exactly what the sweep's first run will charge (the
        // blocked stop rule fires at block granularity, not record
        // granularity, so an exhaustive-kernel cost would not match).
        let opts = AlgoOptions {
            kernel: aggsky::core::KernelConfig::columnar(),
            ..AlgoOptions::exact(gamma)
        };
        let solo = Algorithm::NestedLoop.run_with(&ds, opts).unwrap();
        let one_run_cost = solo.stats.record_pairs;
        assert!(one_run_cost > 0, "seed={seed}: degenerate workload");

        // Two identical thresholds under a budget that one uncached run
        // nearly exhausts: if served/resumed pairs were re-charged, the
        // second run would trip the budget. A small slack absorbs the
        // group-level ticks that are charged per run regardless.
        let budget = one_run_cost + ds.n_groups() as u64 * ds.n_groups() as u64;
        let ctx = RunContext::with_budget(budget);
        let outcome =
            gamma_sweep_ctx(&ds, Algorithm::NestedLoop, &[gamma, gamma], opts, &ctx).unwrap();
        assert_eq!(outcome.runs.len(), 2, "seed={seed}: sweep was interrupted");
        for run in &outcome.runs {
            assert!(run.outcome.is_complete(), "seed={seed}: γ={} interrupted", run.gamma);
        }
        let second = outcome.runs[1].outcome.stats();
        assert_eq!(second.record_pairs, 0, "seed={seed}: repeat run performed fresh counting");
        assert_eq!(second.cache_misses, 0, "seed={seed}: repeat run missed the cache");
        assert_eq!(second.cache_resumes, 0, "seed={seed}: same-γ repeat should serve, not resume");
        assert!(second.cache_hits > 0, "seed={seed}: repeat run never hit the cache");
    }
}

/// Tightening γ upward may need *more* evidence for a pair than the looser
/// run stored; the kernel resumes the partial tally at its block cursor
/// instead of recounting, so the sweep's total fresh work never exceeds the
/// single most expensive independent run by more than the per-run overhead.
#[test]
fn resumption_only_pays_the_marginal_counting() {
    for seed in 0..4u64 {
        let ds = dataset(4000 + seed);
        let gammas: Vec<Gamma> = GAMMAS.iter().map(|&g| Gamma::new(g).unwrap()).collect();
        let opts = AlgoOptions::exact(Gamma::DEFAULT);
        let outcome =
            gamma_sweep_ctx(&ds, Algorithm::NestedLoop, &gammas, opts, &RunContext::unlimited())
                .unwrap();
        let swept_fresh: u64 = outcome.runs.iter().map(|r| r.outcome.stats().record_pairs).sum();
        let solo_total: u64 = gammas
            .iter()
            .map(|&gamma| {
                Algorithm::NestedLoop
                    .run_with(&ds, AlgoOptions { gamma, ..opts })
                    .unwrap()
                    .stats
                    .record_pairs
            })
            .sum();
        // Each unordered pair's tally advances monotonically toward its
        // record-pair product and is never recounted, so the exhaustive
        // all-pairs product is a hard ceiling on the sweep's fresh work.
        let ceiling: u64 = (0..ds.n_groups())
            .flat_map(|g1| (g1 + 1..ds.n_groups()).map(move |g2| (g1, g2)))
            .map(|(g1, g2)| (ds.group_len(g1) * ds.group_len(g2)) as u64)
            .sum();
        assert!(
            swept_fresh <= ceiling,
            "seed={seed}: sweep recounted pairs ({swept_fresh} fresh vs ceiling {ceiling})"
        );
        assert!(
            swept_fresh <= solo_total,
            "seed={seed}: cache made the sweep do more work ({swept_fresh} vs {solo_total})"
        );
    }
}
