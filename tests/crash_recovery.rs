//! Crash/recovery differential suite (build with `--features chaos`).
//!
//! For every I/O fault point of the persist layer (DESIGN.md §15) this
//! drives a chunked durable run to completion *through* the injected
//! fault — silent corruption discovered at the next load, loud save
//! errors, simulated crashes before and after the commit rename — and
//! asserts the final partition **and its `Stats`** are bit-identical to an
//! uninterrupted one-shot run. Work that was durable is never recharged;
//! work lost to the crash is recomputed and charged exactly once.

#![cfg(feature = "chaos")]

use aggsky::core::persist::{checkpoint_step, CheckpointStore, IoFaultKind, IoFaultPlan};
use aggsky::core::{anytime_skyline, AnytimeResult, Error, Gamma, GroupedDataset, RunContext};
use aggsky_datagen::{Distribution, SyntheticConfig};

const ALL_FAULTS: [IoFaultKind; 7] = [
    IoFaultKind::ShortWrite,
    IoFaultKind::TornFrame,
    IoFaultKind::BitFlip,
    IoFaultKind::FailFsync,
    IoFaultKind::FailRename,
    IoFaultKind::CrashBeforeRename,
    IoFaultKind::CrashAfterRename,
];

fn dataset(seed: u64) -> GroupedDataset {
    SyntheticConfig {
        n_records: 120,
        n_groups: 12,
        dim: 3,
        seed,
        ..SyntheticConfig::paper_default(Distribution::AntiCorrelated)
    }
    .generate()
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("aggsky-crashrec-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Drives chunked durable steps over `store` until the partition
/// completes, treating every `Error::Io` as a simulated crash the next
/// iteration recovers from (the fire-once plan cannot re-fail). Returns
/// the final partition and how many crashes were survived.
fn drive_to_completion(
    ds: &GroupedDataset,
    store: &CheckpointStore,
    chunk: u64,
) -> (AnytimeResult, usize) {
    let mut crashes = 0;
    let mut rounds = 0;
    loop {
        rounds += 1;
        assert!(rounds < 100_000, "durable run did not converge");
        let ctx = RunContext::with_budget(chunk);
        match checkpoint_step(ds, Gamma::DEFAULT, &ctx, store) {
            Ok(step) if step.is_complete() => return (step.result, crashes),
            Ok(_) => {}
            Err(Error::Io(_)) => crashes += 1,
            Err(e) => panic!("unexpected durable failure: {e}"),
        }
    }
}

#[test]
fn every_fault_point_recovers_bit_identically() {
    for seed in [11u64, 12] {
        let ds = dataset(seed);
        let one_shot = anytime_skyline(&ds, Gamma::DEFAULT, u64::MAX);
        assert!(one_shot.is_complete());
        for kind in ALL_FAULTS {
            for at_save in [0u64, 2] {
                let dir = tmpdir(&format!("{seed}-{kind:?}-{at_save}"));
                let store = CheckpointStore::open(&dir)
                    .unwrap()
                    .with_io_fault(IoFaultPlan::new(kind, at_save));
                let (result, crashes) = drive_to_completion(&ds, &store, 40);
                let fired = store.io_fault().unwrap().fired();
                assert_eq!(fired, 1, "{kind:?}@{at_save}: fault never fired (dead harness)");
                assert_eq!(
                    result, one_shot,
                    "{kind:?}@{at_save} seed {seed}: recovered partition or stats diverged"
                );
                // Loud faults surface as exactly one simulated crash; silent
                // ones are absorbed by the next load's degradation ladder.
                match kind {
                    IoFaultKind::ShortWrite | IoFaultKind::TornFrame | IoFaultKind::BitFlip => {
                        assert_eq!(crashes, 0, "{kind:?} should corrupt silently")
                    }
                    _ => assert_eq!(crashes, 1, "{kind:?} should error the save once"),
                }
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
}

#[test]
fn silent_corruption_is_reported_as_skipped_frames() {
    let ds = dataset(21);
    let one_shot = anytime_skyline(&ds, Gamma::DEFAULT, u64::MAX);
    let dir = tmpdir("skipreport");
    let store = CheckpointStore::open(&dir)
        .unwrap()
        .with_io_fault(IoFaultPlan::new(IoFaultKind::TornFrame, 1));
    let mut saw_skip = false;
    let mut rounds = 0;
    let result = loop {
        rounds += 1;
        assert!(rounds < 100_000, "did not converge");
        let ctx = RunContext::with_budget(40);
        let step = checkpoint_step(&ds, Gamma::DEFAULT, &ctx, &store).unwrap();
        saw_skip |= step.frames_skipped > 0;
        if step.is_complete() {
            break step.result;
        }
    };
    assert!(saw_skip, "the torn frame was never observed during recovery");
    assert_eq!(result, one_shot);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn seeded_fault_plans_replay_the_same_schedule() {
    let ds = dataset(31);
    let one_shot = anytime_skyline(&ds, Gamma::DEFAULT, u64::MAX);
    for seed in 0..12u64 {
        let plan = IoFaultPlan::from_seed(seed, 3);
        let replay = IoFaultPlan::from_seed(seed, 3);
        assert_eq!(plan.kind(), replay.kind(), "seed {seed} not reproducible");
        assert_eq!(plan.trigger_at(), replay.trigger_at(), "seed {seed} not reproducible");
        let dir = tmpdir(&format!("seeded-{seed}"));
        let store = CheckpointStore::open(&dir).unwrap().with_io_fault(plan);
        let (result, _) = drive_to_completion(&ds, &store, 60);
        assert_eq!(result, one_shot, "seed {seed}: recovered run diverged from one-shot");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn crash_between_chunks_loses_nothing_durable() {
    // Simulate crash-at-every-boundary by reopening the store (a fresh
    // process image) before each chunk; the frames on disk are the only
    // carried state.
    let ds = dataset(41);
    let one_shot = anytime_skyline(&ds, Gamma::DEFAULT, u64::MAX);
    let dir = tmpdir("betweenchunks");
    let mut rounds = 0;
    let result = loop {
        rounds += 1;
        assert!(rounds < 100_000, "did not converge");
        let store = CheckpointStore::open(&dir).unwrap();
        let ctx = RunContext::with_budget(35);
        let step = checkpoint_step(&ds, Gamma::DEFAULT, &ctx, &store).unwrap();
        if step.is_complete() {
            break step.result;
        }
        drop(store); // the "crash": all in-memory state dies here
    };
    assert_eq!(result, one_shot, "process-restart chain diverged from one-shot");
    let _ = std::fs::remove_dir_all(&dir);
}
