//! Performance *shape* tests: instead of timing (flaky in CI), these assert
//! the paper's comparative claims on the deterministic work counters every
//! algorithm reports — which optimization saves which kind of work, and
//! where it stops helping (the Figure 11 overlap crossover).

use aggsky::{AlgoOptions, Algorithm, Gamma};
use aggsky_datagen::{Distribution, GroupSizes, SyntheticConfig};

fn dataset(dist: Distribution, n: usize, spread: f64) -> aggsky::GroupedDataset {
    SyntheticConfig {
        n_records: n,
        n_groups: (n / 50).max(4),
        dim: 4,
        spread,
        ..SyntheticConfig::paper_default(dist)
    }
    .generate()
}

/// Section 3.3: the stopping rule must cut record comparisons roughly in
/// half on the default workloads (a pair is abandoned once one side's
/// outcome is settled).
#[test]
fn stop_rule_cuts_record_comparisons() {
    for dist in Distribution::ALL {
        let ds = dataset(dist, 3000, 0.2);
        let on = Algorithm::NestedLoop.run_with(&ds, AlgoOptions::paper(Gamma::DEFAULT)).unwrap();
        let off = Algorithm::NestedLoop
            .run_with(&ds, AlgoOptions { stop_rule: false, ..AlgoOptions::paper(Gamma::DEFAULT) })
            .unwrap();
        assert_eq!(on.skyline, off.skyline);
        assert!(
            (on.stats.record_pairs as f64) < 0.8 * off.stats.record_pairs as f64,
            "{}: stop rule saved too little: {} vs {}",
            dist.label(),
            on.stats.record_pairs,
            off.stats.record_pairs
        );
    }
}

/// Algorithm 5: on low-overlap data the window query must prune most group
/// pairs relative to NL's all-pairs enumeration.
#[test]
fn index_prunes_group_pairs_at_low_overlap() {
    let ds = dataset(Distribution::AntiCorrelated, 3000, 0.1);
    let nl = Algorithm::NestedLoop.run(&ds, Gamma::DEFAULT);
    let indexed = Algorithm::Indexed.run(&ds, Gamma::DEFAULT);
    assert!(
        (indexed.stats.group_pairs as f64) < 0.5 * nl.stats.group_pairs as f64,
        "index pruned too little: {} vs {}",
        indexed.stats.group_pairs,
        nl.stats.group_pairs
    );
}

/// Figure 11's crossover: at very high overlap the window query returns
/// nearly everyone and (because pairs are visited from both sides) the
/// index does *more* group-pair work than NL.
#[test]
fn index_stops_helping_at_high_overlap() {
    let ds = dataset(Distribution::AntiCorrelated, 2000, 0.9);
    let nl = Algorithm::NestedLoop.run(&ds, Gamma::DEFAULT);
    let indexed = Algorithm::Indexed.run(&ds, Gamma::DEFAULT);
    assert!(
        indexed.stats.group_pairs >= nl.stats.group_pairs,
        "expected the crossover: {} vs {}",
        indexed.stats.group_pairs,
        nl.stats.group_pairs
    );
}

/// Figure 9 bounding boxes: on low-overlap anti-correlated data most pairs
/// must resolve from corners alone, with near-zero record comparisons.
#[test]
fn bbox_resolves_pairs_on_disjoint_boxes() {
    let ds = dataset(Distribution::AntiCorrelated, 3000, 0.1);
    let plain = Algorithm::NestedLoop.run(&ds, Gamma::DEFAULT);
    let boxed = Algorithm::NestedLoop
        .run_with(&ds, AlgoOptions { bbox_prune: true, ..AlgoOptions::paper(Gamma::DEFAULT) })
        .unwrap();
    assert_eq!(plain.skyline, boxed.skyline);
    assert!(
        (boxed.stats.record_pairs as f64) < 0.2 * plain.stats.record_pairs as f64,
        "bbox saved too little: {} vs {}",
        boxed.stats.record_pairs,
        plain.stats.record_pairs
    );
    assert!(boxed.stats.bbox_resolved > 0);
}

/// Weak-transitivity pruning must actually skip comparisons on correlated
/// data (where strong dominance chains are common).
#[test]
fn transitive_skips_on_correlated_data() {
    let ds = dataset(Distribution::Correlated, 3000, 0.2);
    let tr = Algorithm::Transitive.run(&ds, Gamma::DEFAULT);
    let nl = Algorithm::NestedLoop.run(&ds, Gamma::DEFAULT);
    assert!(
        tr.stats.group_pairs < nl.stats.group_pairs,
        "TR compared as many pairs as NL: {} vs {}",
        tr.stats.group_pairs,
        nl.stats.group_pairs
    );
    assert!(tr.stats.transitive_skips > 0);
}

/// Section 3.4 (global optimization): under Zipfian group sizes, visiting
/// small groups first must reduce record-pair work versus insertion order.
#[test]
fn small_groups_first_helps_under_zipf() {
    let ds = SyntheticConfig {
        n_records: 4000,
        n_groups: 40,
        group_sizes: GroupSizes::Zipf(1.2),
        ..SyntheticConfig::paper_default(Distribution::Correlated)
    }
    .generate();
    let unsorted = Algorithm::Sorted
        .run_with(
            &ds,
            AlgoOptions {
                sort: aggsky::SortStrategy::InsertionOrder,
                ..AlgoOptions::paper(Gamma::DEFAULT)
            },
        )
        .unwrap();
    let sorted = Algorithm::Sorted
        .run_with(
            &ds,
            AlgoOptions {
                sort: aggsky::SortStrategy::SizeThenDistance,
                ..AlgoOptions::paper(Gamma::DEFAULT)
            },
        )
        .unwrap();
    assert!(
        sorted.stats.record_pairs <= unsorted.stats.record_pairs,
        "size-aware order did not help: {} vs {}",
        sorted.stats.record_pairs,
        unsorted.stats.record_pairs
    );
}

/// The anytime operator must respect its budget (within one group-pair
/// resolution of overshoot).
#[test]
fn anytime_budget_is_respected() {
    let ds = dataset(Distribution::Independent, 2000, 0.2);
    let max_pair = {
        let m = (0..ds.n_groups()).map(|g| ds.group_len(g) as u64).max().unwrap();
        m * m
    };
    for budget in [100u64, 1_000, 10_000] {
        let r = aggsky::anytime_skyline(&ds, Gamma::DEFAULT, budget);
        assert!(
            r.stats.record_pairs <= budget + max_pair,
            "budget {budget} exceeded: spent {}",
            r.stats.record_pairs
        );
    }
}
