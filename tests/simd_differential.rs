//! Differential suite for the AVX2 straddle kernel: the vectorized path
//! (selected automatically by `KernelConfig::Columnar` when the CPU
//! supports it) must be *bit-identical* to the scalar columnar kernel —
//! same verdicts, same `n12`/`n21` tallies, same `Stats` — for every
//! `PairOptions` combination, across dimensionalities on both sides of the
//! monomorphized range (d ∈ {1, 2, 4, 5, 8, 9}), at block sizes whose lane
//! stride is already vector-aligned (64), needs padding (7 → 8), or is
//! almost all padding (1 → 4), with ragged group sizes so sentinel-padded
//! edge blocks run through the packed compares.
//!
//! On hardware without AVX2 the suite prints a visible SKIP line and
//! passes vacuously (the auto path degrades to the scalar kernel, so there
//! is nothing to differentiate).

use aggsky::core::cpu;
use aggsky::core::kernel::{
    compare_groups_columnar, compare_groups_columnar_scalar, count_pairs, Kernel, KernelConfig,
};
use aggsky::core::paircount::PairOptions;
use aggsky::core::prepared::{PreparedDataset, MAX_LANE_BLOCK};
use aggsky::core::{DominationMatrix, Mbb, Stats};
use aggsky::datagen::Rng64;
use aggsky::{AlgoOptions, Algorithm, Gamma, GroupedDataset, GroupedDatasetBuilder};

const DIMS: [usize; 6] = [1, 2, 4, 5, 8, 9];
const BLOCK_SIZES: [usize; 3] = [1, 7, 64];

/// `true` when the AVX2 path is actually exercised; otherwise prints the
/// skip visibly so a CI log never silently loses the coverage.
fn simd_or_skip(test: &str) -> bool {
    if cpu::simd_active() {
        return true;
    }
    eprintln!("SKIP {test}: AVX2 unavailable (or AGGSKY_FORCE_SCALAR set); scalar-only host");
    false
}

/// Random integer-grid dataset with ragged group sizes (see the columnar
/// differential suite): small coordinate ranges maximize ties, and lengths
/// straddling block boundaries leave sentinel-padded edge blocks at every
/// tested block size.
fn dataset(dim: usize, seed: u64) -> GroupedDataset {
    let mut rng = Rng64::new(seed.wrapping_mul(0xA076_1D64).wrapping_add(dim as u64));
    let mut b = GroupedDatasetBuilder::new(dim).trusted_labels();
    for g in 0..5 {
        let len = 1 + rng.index(13);
        let rows: Vec<Vec<f64>> =
            (0..len).map(|_| (0..dim).map(|_| rng.index(4) as f64).collect()).collect();
        b.push_group(format!("g{g}"), &rows).unwrap();
    }
    b.build().unwrap()
}

fn all_pair_options() -> Vec<PairOptions> {
    let mut out = Vec::new();
    for stop_rule in [false, true] {
        for need_bar in [false, true] {
            for corrected_bar in [false, true] {
                out.push(PairOptions { stop_rule, need_bar, corrected_bar });
            }
        }
    }
    out
}

fn ones(m: &DominationMatrix) -> u64 {
    let mut n = 0;
    for i in 0..m.rows() {
        for j in 0..m.cols() {
            n += m.get(i, j) as u64;
        }
    }
    n
}

/// Verdicts AND `Stats` of the auto (AVX2) columnar path equal the forced
/// scalar columnar path bit for bit, for every dimension, block size,
/// option set, γ, and box configuration.
#[test]
fn avx2_is_bit_identical_to_scalar_columnar() {
    if !simd_or_skip("avx2_is_bit_identical_to_scalar_columnar") {
        return;
    }
    for dim in DIMS {
        for seed in 0..4u64 {
            let ds = dataset(dim, seed);
            let gamma = Gamma::new([0.5, 0.75, 0.9, 1.0][(seed % 4) as usize]).unwrap();
            let boxes = Mbb::of_all_groups(&ds);
            for block_size in BLOCK_SIZES {
                let prep = PreparedDataset::build(&ds, block_size).unwrap();
                assert!(prep.lanes_enabled(), "d={dim} bs={block_size}");
                for g1 in ds.group_ids() {
                    for g2 in (g1 + 1)..ds.n_groups() {
                        for opts in all_pair_options() {
                            for use_boxes in [false, true] {
                                let pair_boxes = use_boxes.then(|| (&boxes[g1], &boxes[g2]));
                                let tag = format!(
                                    "d={dim} seed={seed} bs={block_size} {g1}v{g2} {opts:?} \
                                     boxes={use_boxes}"
                                );
                                let mut s_simd = Stats::default();
                                let mut s_scalar = Stats::default();
                                let simd = compare_groups_columnar(
                                    &prep,
                                    g1,
                                    g2,
                                    gamma,
                                    pair_boxes,
                                    opts,
                                    &mut s_simd,
                                );
                                let scalar = compare_groups_columnar_scalar(
                                    &prep,
                                    g1,
                                    g2,
                                    gamma,
                                    pair_boxes,
                                    opts,
                                    &mut s_scalar,
                                );
                                assert_eq!(simd, scalar, "verdict drift: {tag}");
                                assert_eq!(s_simd, s_scalar, "stats drift: {tag}");
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Exact tallies under the vectorized kernel: `count_pairs` (which
/// dispatches to AVX2 when active) equals the domination-matrix ones-count
/// in both directions — the packed ≥ masks charge exactly the pairs the
/// per-record definition charges.
#[test]
fn avx2_counts_match_domination_matrix() {
    if !simd_or_skip("avx2_counts_match_domination_matrix") {
        return;
    }
    for dim in DIMS {
        for seed in 0..3u64 {
            let ds = dataset(dim, seed);
            for block_size in BLOCK_SIZES {
                let prep = PreparedDataset::build(&ds, block_size).unwrap();
                for g1 in ds.group_ids() {
                    for g2 in ds.group_ids() {
                        if g1 == g2 {
                            continue;
                        }
                        let mut stats = Stats::default();
                        let (n12, n21) = count_pairs(&prep, g1, g2, &mut stats);
                        assert_eq!(
                            n12,
                            ones(&DominationMatrix::build(&ds, g1, g2)),
                            "d={dim} seed={seed} bs={block_size} {g1} over {g2}"
                        );
                        assert_eq!(
                            n21,
                            ones(&DominationMatrix::build(&ds, g2, g1)),
                            "d={dim} seed={seed} bs={block_size} {g2} over {g1}"
                        );
                    }
                }
            }
        }
    }
}

/// Sentinel padding under packed compares: a group one record longer than
/// the maximum lane block leaves a 63/64-padded edge block, and block size
/// 7 pads every lane chunk's tail; the padded lanes must contribute nothing
/// to either tally or to the work counters on the AVX2 path.
#[test]
fn sentinel_padded_edge_blocks_are_invisible_to_avx2() {
    if !simd_or_skip("sentinel_padded_edge_blocks_are_invisible_to_avx2") {
        return;
    }
    for dim in DIMS {
        let mut rng = Rng64::new(9_000 + dim as u64);
        let mut b = GroupedDatasetBuilder::new(dim).trusted_labels();
        for (g, len) in [MAX_LANE_BLOCK + 1, 1, MAX_LANE_BLOCK - 1].iter().enumerate() {
            let rows: Vec<Vec<f64>> =
                (0..*len).map(|_| (0..dim).map(|_| rng.index(3) as f64).collect()).collect();
            b.push_group(format!("g{g}"), &rows).unwrap();
        }
        let ds = b.build().unwrap();
        let gamma = Gamma::new(0.75).unwrap();
        let opts = PairOptions { stop_rule: false, need_bar: true, corrected_bar: true };
        for block_size in BLOCK_SIZES {
            let prep = PreparedDataset::build(&ds, block_size).unwrap();
            for g1 in ds.group_ids() {
                for g2 in (g1 + 1)..ds.n_groups() {
                    let mut s_simd = Stats::default();
                    let mut s_scalar = Stats::default();
                    let simd =
                        compare_groups_columnar(&prep, g1, g2, gamma, None, opts, &mut s_simd);
                    let scalar = compare_groups_columnar_scalar(
                        &prep,
                        g1,
                        g2,
                        gamma,
                        None,
                        opts,
                        &mut s_scalar,
                    );
                    assert_eq!(simd, scalar, "d={dim} bs={block_size} {g1}v{g2}");
                    assert_eq!(s_simd, s_scalar, "d={dim} bs={block_size} {g1}v{g2}");
                    let (n12, n21) = count_pairs(&prep, g1, g2, &mut Stats::default());
                    assert_eq!(n12, ones(&DominationMatrix::build(&ds, g1, g2)), "d={dim}");
                    assert_eq!(n21, ones(&DominationMatrix::build(&ds, g2, g1)), "d={dim}");
                }
            }
        }
    }
}

/// The `ColumnarScalar` kernel config is a first-class scalar override: it
/// validates block sizes exactly like `Columnar`, and every evaluated
/// algorithm returns the same skyline with bit-identical work counters
/// under both configs — which is precisely the claim that the automatic
/// AVX2 dispatch changes nothing observable.
#[test]
fn columnar_scalar_config_forces_the_oracle_path() {
    let ds = dataset(4, 1);
    let too_big = KernelConfig::ColumnarScalar { block_size: MAX_LANE_BLOCK + 1 };
    assert!(Kernel::new(&ds, too_big).is_err());
    assert!(Kernel::new(&ds, KernelConfig::ColumnarScalar { block_size: 0 }).is_err());
    assert!(Kernel::new(&ds, KernelConfig::columnar_scalar()).is_ok());

    for dim in [2, 4, 5] {
        for seed in 30..33u64 {
            let ds = dataset(dim, seed);
            let gamma = Gamma::new(0.75).unwrap();
            for algo in Algorithm::EVALUATED {
                let base = AlgoOptions::exact(gamma);
                let auto = algo
                    .run_with(&ds, AlgoOptions { kernel: KernelConfig::columnar(), ..base })
                    .unwrap();
                let scalar = algo
                    .run_with(&ds, AlgoOptions { kernel: KernelConfig::columnar_scalar(), ..base })
                    .unwrap();
                assert_eq!(auto.skyline, scalar.skyline, "{algo:?} d={dim} seed={seed}");
                assert_eq!(auto.stats, scalar.stats, "{algo:?} d={dim} seed={seed}: stats drift");
            }
        }
    }
}
