//! Seeded fault-injection suite (build with `--features chaos`).
//!
//! Contracts under test, per DESIGN.md §10: (a) the chaos build with no
//! fault plan is byte-identical to the plain build, (b) budget/delay
//! interruptions degrade to sound partial results on every algorithm,
//! (c) an injected worker panic is retried and never changes the parallel
//! skyline, and (d) the corrupt-coordinate fault is a *negative control* —
//! it visibly changes results, proving the harness actually injects.

#![cfg(feature = "chaos")]

use aggsky::core::{parallel_skyline_ctx, FaultKind, FaultPlan, KernelConfig};
use aggsky::{
    naive_skyline, AlgoOptions, Algorithm, Gamma, GroupedDataset, GroupedDatasetBuilder,
    InterruptReason, Outcome, RunContext,
};
use aggsky_datagen::{Distribution, SyntheticConfig};

const SEEDS: [u64; 3] = [101, 202, 303];

const ALL: [Algorithm; 6] = [
    Algorithm::Naive,
    Algorithm::NestedLoop,
    Algorithm::Transitive,
    Algorithm::Sorted,
    Algorithm::Indexed,
    Algorithm::IndexedBbox,
];

fn dataset(seed: u64) -> GroupedDataset {
    SyntheticConfig {
        n_records: 200,
        n_groups: 20,
        dim: 3,
        seed,
        ..SyntheticConfig::paper_default(Distribution::AntiCorrelated)
    }
    .generate()
}

#[test]
fn fault_free_chaos_build_is_byte_identical() {
    for seed in SEEDS {
        let ds = dataset(seed);
        let opts = AlgoOptions::exact(Gamma::DEFAULT);
        for algo in ALL {
            let plain = algo.run_with(&ds, opts).unwrap();
            match algo.run_ctx(&ds, opts, &RunContext::unlimited()).unwrap() {
                Outcome::Complete(r) => {
                    assert_eq!(r.skyline, plain.skyline, "{algo:?} seed {seed}");
                    assert_eq!(r.stats, plain.stats, "{algo:?} seed {seed}: stats drifted");
                }
                Outcome::Interrupted { reason, .. } => {
                    panic!("{algo:?} interrupted without a fault plan: {reason}")
                }
            }
        }
    }
}

#[test]
fn delay_faults_charge_the_budget_and_degrade_soundly() {
    for seed in SEEDS {
        let ds = dataset(seed);
        let exact = naive_skyline(&ds, Gamma::DEFAULT).skyline;
        let opts = AlgoOptions::exact(Gamma::DEFAULT);
        for algo in ALL {
            // Budget that would comfortably complete the run...
            let full_cost = match algo.run_ctx(&ds, opts, &RunContext::unlimited()).unwrap() {
                Outcome::Complete(r) => r.stats.record_pairs,
                Outcome::Interrupted { .. } => unreachable!("unlimited run interrupted"),
            };
            // ...except that an injected stall burns it all at once.
            let plan = FaultPlan::delay_ticks(full_cost / 2, full_cost * 2);
            let ctx = RunContext::with_budget(full_cost + 1).with_fault(plan);
            match algo.run_ctx(&ds, opts, &ctx).unwrap() {
                Outcome::Complete(_) => panic!("{algo:?} seed {seed}: delay fault never bit"),
                Outcome::Interrupted { reason, partial } => {
                    assert_eq!(reason, InterruptReason::BudgetExhausted, "{algo:?}");
                    for g in &partial.confirmed_in {
                        assert!(exact.contains(g), "{algo:?} seed {seed}: {g} wrongly in");
                    }
                    for g in &partial.confirmed_out {
                        assert!(!exact.contains(g), "{algo:?} seed {seed}: {g} wrongly out");
                    }
                }
            }
            let fault = ctx.fault().expect("plan installed");
            assert_eq!(fault.fired(), 1, "{algo:?}: delay fault must fire exactly once");
        }
    }
}

#[test]
fn injected_worker_panic_is_retried_and_does_not_change_the_skyline() {
    for seed in SEEDS {
        let ds = dataset(seed);
        let exact = naive_skyline(&ds, Gamma::DEFAULT).skyline;
        // Total virtual ticks of the computation, so the trigger points
        // below are guaranteed to be reached.
        let full_cost = parallel_skyline_ctx(
            &ds,
            Gamma::DEFAULT,
            1,
            KernelConfig::blocked(),
            &RunContext::unlimited(),
        )
        .unwrap()
        .unwrap_or_partial()
        .stats
        .record_pairs;
        for threads in [1usize, 2, 4] {
            for at in [0u64, full_cost / 3, full_cost * 2 / 3] {
                let plan = FaultPlan::panic_at_pair(at);
                let ctx = RunContext::unlimited().with_fault(plan);
                let outcome = parallel_skyline_ctx(
                    &ds,
                    Gamma::DEFAULT,
                    threads,
                    KernelConfig::blocked(),
                    &ctx,
                )
                .unwrap_or_else(|e| panic!("seed {seed} threads {threads} at {at}: fatal {e}"));
                let result = match outcome {
                    Outcome::Complete(r) => r,
                    Outcome::Interrupted { reason, .. } => {
                        panic!("seed {seed} threads {threads}: wrongly interrupted: {reason}")
                    }
                };
                assert_eq!(
                    result.skyline, exact,
                    "seed {seed} threads {threads} at {at}: panic changed the skyline"
                );
                let fault = ctx.fault().expect("plan installed");
                assert_eq!(fault.fired(), 1, "panic fault fires exactly once");
                assert!(
                    result.stats.worker_retries >= 1,
                    "seed {seed} threads {threads}: the retry was not recorded"
                );
            }
        }
    }
}

#[test]
fn pair_granular_panic_mid_batch_is_retried_without_double_charging() {
    // Four groups of 60 records at block size 1: every straddle pair spans
    // 60 × 60 = 3600 block pairs, several times the scheduler's per-batch
    // budget, so group pairs are split into stolen batches with resume
    // tallies and the injected panic lands *mid pair*, not at a pair
    // boundary. The retry must resume from the continuation tally without
    // committing the discarded batch's counters twice, and the worker's
    // replaced PairCache must never serve a tally the panic could have
    // corrupted.
    let mut rng = aggsky::datagen::Rng64::new(0xC4A05);
    let mut b = GroupedDatasetBuilder::new(3).trusted_labels();
    for g in 0..4 {
        let rows: Vec<Vec<f64>> =
            (0..60).map(|_| (0..3).map(|_| rng.index(5) as f64).collect()).collect();
        b.push_group(format!("g{g}"), &rows).unwrap();
    }
    let ds = b.build().unwrap();
    let exact = naive_skyline(&ds, Gamma::DEFAULT).skyline;
    let kernel = KernelConfig::Columnar { block_size: 1 };

    let clean = match parallel_skyline_ctx(&ds, Gamma::DEFAULT, 1, kernel, &RunContext::unlimited())
        .unwrap()
    {
        Outcome::Complete(r) => r,
        Outcome::Interrupted { reason, .. } => panic!("clean run interrupted: {reason}"),
    };
    assert_eq!(clean.skyline, exact, "clean pair-granular run disagrees with the oracle");
    assert_eq!(clean.stats.worker_retries, 0);
    let full_cost = clean.stats.record_pairs;

    for threads in [1usize, 2, 4] {
        for at in [0u64, full_cost / 3, full_cost * 2 / 3] {
            let plan = FaultPlan::panic_at_pair(at);
            let ctx = RunContext::unlimited().with_fault(plan);
            let outcome = parallel_skyline_ctx(&ds, Gamma::DEFAULT, threads, kernel, &ctx)
                .unwrap_or_else(|e| panic!("threads {threads} at {at}: fatal {e}"));
            let result = match outcome {
                Outcome::Complete(r) => r,
                Outcome::Interrupted { reason, .. } => {
                    panic!("threads {threads} at {at}: wrongly interrupted: {reason}")
                }
            };
            assert_eq!(result.skyline, exact, "threads {threads} at {at}: skyline changed");
            assert_eq!(ctx.fault().expect("plan installed").fired(), 1);
            assert!(result.stats.worker_retries >= 1, "threads {threads} at {at}: no retry");
            if threads == 1 {
                // One worker is a deterministic schedule (the requeued job is
                // popped back immediately), so the discarded batch can only
                // *add* recounted work — counting fewer pairs than the clean
                // run would mean a tally was served twice.
                assert!(
                    result.stats.record_pairs >= full_cost,
                    "threads 1 at {at}: {} < clean {} — a batch was double-served",
                    result.stats.record_pairs,
                    full_cost
                );
            }
            if threads == 1 && at == 0 {
                // The fault fires on the very first poll, before any counter
                // is committed and before the cache holds anything, so the
                // retried run is byte-identical apart from the retry count.
                let mut stats = result.stats;
                stats.worker_retries = clean.stats.worker_retries;
                assert_eq!(stats, clean.stats, "at 0 the retry must leave no other trace");
            }
        }
    }
}

#[test]
fn injected_worker_panic_dumps_the_flight_ring() {
    // The black box must survive the crash it records: a panic fault fired
    // on a worker thread dumps the flight ring *before* unwinding, so the
    // dump carries the events leading into the injected crash. The retry
    // that follows dumps again under its own reason; each reason is
    // captured at most once per recorder.
    use aggsky::core::obs::FlightRecorder;
    use std::sync::Arc;

    let ds = dataset(SEEDS[0]);
    let flight = Arc::new(FlightRecorder::new());
    let plan = FaultPlan::panic_at_pair(0);
    let ctx = RunContext::unlimited().with_fault(plan).with_recorder(flight.clone());
    let outcome = parallel_skyline_ctx(&ds, Gamma::DEFAULT, 2, KernelConfig::blocked(), &ctx)
        .expect("panic fault is retried, not fatal");
    assert!(matches!(outcome, Outcome::Complete(_)), "retried run must complete");
    assert_eq!(ctx.fault().expect("plan installed").fired(), 1);

    let dumps = flight.dumps();
    let panic_dump = dumps
        .iter()
        .find(|d| d.reason == "chaos_panic")
        .expect("injected panic must flush the flight ring");
    assert!(panic_dump.json.starts_with("[\n"), "dump is a Chrome-trace JSON array");
    assert!(panic_dump.json.trim_end().ends_with(']'), "dump array unterminated");
    assert!(
        dumps.iter().any(|d| d.reason == "worker_retry"),
        "the retry that follows the panic dumps under its own reason: {:?}",
        dumps.iter().map(|d| d.reason).collect::<Vec<_>>()
    );
    assert_eq!(
        dumps.iter().filter(|d| d.reason == "chaos_panic").count(),
        1,
        "each reason dumps at most once"
    );
}

#[test]
fn corrupt_coordinate_fault_visibly_changes_a_verdict() {
    // Negative control on a rigged two-group dataset: the high group
    // dominates the low one, so the exact skyline is {high}. Corrupting the
    // very first verdict swaps its directions and flips the answer — proof
    // that the injection hook really sits on the comparison path.
    let mut b = GroupedDatasetBuilder::new(2);
    b.push_group("low", &[vec![0.0, 0.0], vec![1.0, 1.0]]).unwrap();
    b.push_group("high", &[vec![10.0, 10.0], vec![11.0, 11.0]]).unwrap();
    let ds = b.build().unwrap();
    let exact = naive_skyline(&ds, Gamma::DEFAULT).skyline;
    assert_eq!(exact, vec![1]);

    let plan = FaultPlan::corrupt_coordinate(0);
    assert_eq!(plan.kind(), FaultKind::CorruptCoordinate);
    let ctx = RunContext::unlimited().with_fault(plan);
    let outcome =
        Algorithm::NestedLoop.run_ctx(&ds, AlgoOptions::exact(Gamma::DEFAULT), &ctx).unwrap();
    let corrupted = match outcome {
        Outcome::Complete(r) => r.skyline,
        Outcome::Interrupted { reason, .. } => panic!("corrupt fault must not interrupt: {reason}"),
    };
    assert_ne!(corrupted, exact, "corrupted verdict should flip the two-group skyline");
    assert_eq!(ctx.fault().expect("plan installed").fired(), 1);
}

#[test]
fn seeded_plans_are_reproducible_and_harmless_on_the_parallel_path() {
    // FaultPlan::from_seed draws a deterministic (kind, position); whatever
    // it lands on, the parallel scheduler must neither crash the process
    // nor return an unsound partial (corrupt plans are excluded from the
    // soundness check — they exist to break results).
    let ds = dataset(404);
    let exact = naive_skyline(&ds, Gamma::DEFAULT).skyline;
    for seed in 0..12u64 {
        let a = FaultPlan::from_seed(seed, 5_000);
        let b = FaultPlan::from_seed(seed, 5_000);
        assert_eq!(a.kind(), b.kind(), "seed {seed}");
        assert_eq!(a.trigger_at(), b.trigger_at(), "seed {seed}");
        let kind = a.kind();
        let ctx = RunContext::unlimited().with_fault(a);
        let outcome =
            parallel_skyline_ctx(&ds, Gamma::DEFAULT, 3, KernelConfig::blocked(), &ctx).unwrap();
        if kind != FaultKind::CorruptCoordinate {
            match outcome {
                Outcome::Complete(r) => assert_eq!(r.skyline, exact, "seed {seed} ({kind:?})"),
                Outcome::Interrupted { reason, .. } => {
                    panic!("seed {seed} ({kind:?}): wrongly interrupted: {reason}")
                }
            }
        }
    }
}
