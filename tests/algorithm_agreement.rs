//! Property-based differential testing: every optimized algorithm (in exact
//! mode) must agree with the exhaustive oracle on arbitrary inputs, and the
//! paper's theoretical properties must hold on random data.

use aggsky::core::paircount::{compare_groups, compare_groups_exhaustive, PairOptions};
use aggsky::core::properties;
use aggsky::core::Stats;
use aggsky::{
    naive_skyline, parallel_skyline, AlgoOptions, Algorithm, Gamma, GroupedDataset,
    GroupedDatasetBuilder, SortStrategy,
};
use proptest::prelude::*;

/// Strategy: a grouped dataset with 1-12 groups of 1-8 records in 1-4 dims,
/// values drawn from a small integer grid (to generate plenty of ties and
/// exact-dominance edge cases).
fn dataset_strategy() -> impl Strategy<Value = GroupedDataset> {
    (1usize..=4, 1usize..=12)
        .prop_flat_map(|(dim, n_groups)| {
            proptest::collection::vec(
                proptest::collection::vec(
                    proptest::collection::vec(0i32..6, dim..=dim),
                    1..=8,
                ),
                n_groups..=n_groups,
            )
        })
        .prop_map(|groups| {
            let dim = groups[0][0].len();
            let mut b = GroupedDatasetBuilder::new(dim).trusted_labels();
            for (i, rows) in groups.iter().enumerate() {
                let rows: Vec<Vec<f64>> = rows
                    .iter()
                    .map(|r| r.iter().map(|&v| v as f64).collect())
                    .collect();
                b.push_group(format!("g{i}"), &rows).unwrap();
            }
            b.build().unwrap()
        })
}

fn gamma_strategy() -> impl Strategy<Value = Gamma> {
    prop_oneof![
        Just(Gamma::DEFAULT),
        Just(Gamma::new(0.6).unwrap()),
        Just(Gamma::new(0.75).unwrap()),
        Just(Gamma::new(0.9).unwrap()),
        Just(Gamma::new(1.0).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exact-pruning variants of every algorithm equal the oracle.
    #[test]
    fn exact_algorithms_match_oracle(ds in dataset_strategy(), gamma in gamma_strategy()) {
        let oracle = naive_skyline(&ds, gamma).skyline;
        let opts = AlgoOptions::exact(gamma);
        for algo in Algorithm::EVALUATED {
            let r = algo.run_with(&ds, opts);
            prop_assert_eq!(&r.skyline, &oracle, "{:?}", algo);
        }
    }

    /// The parallel extension equals the oracle at any thread count.
    #[test]
    fn parallel_matches_oracle(ds in dataset_strategy(), gamma in gamma_strategy(),
                               threads in 1usize..=4) {
        let oracle = naive_skyline(&ds, gamma).skyline;
        prop_assert_eq!(parallel_skyline(&ds, gamma, threads).skyline, oracle);
    }

    /// Paper-pruning algorithms never lose a true skyline group (they may,
    /// rarely, keep an extra one — the printed Algorithm 3's known gap).
    #[test]
    fn paper_algorithms_never_drop_skyline_groups(ds in dataset_strategy(),
                                                  gamma in gamma_strategy()) {
        let oracle = naive_skyline(&ds, gamma).skyline;
        for algo in Algorithm::EVALUATED {
            let r = algo.run(&ds, gamma);
            for g in &oracle {
                prop_assert!(r.skyline.contains(g), "{:?} dropped group {}", algo, g);
            }
        }
    }

    /// The stopping rule and bounding-box decomposition never change a
    /// pairwise verdict.
    #[test]
    fn pair_verdicts_match_exhaustive(ds in dataset_strategy(), gamma in gamma_strategy()) {
        if ds.n_groups() < 2 { return Ok(()); }
        let boxes = aggsky::core::Mbb::of_all_groups(&ds);
        let oracle = compare_groups_exhaustive(&ds, 0, 1, gamma);
        for stop in [false, true] {
            for bbox in [false, true] {
                let mut stats = Stats::default();
                let v = compare_groups(
                    &ds, 0, 1, gamma,
                    bbox.then_some((&boxes[0], &boxes[1])),
                    PairOptions { stop_rule: stop, need_bar: true, corrected_bar: false },
                    &mut stats,
                );
                prop_assert_eq!(v, oracle, "stop={} bbox={}", stop, bbox);
            }
        }
    }

    /// Monotonicity in γ: raising γ only ever grows the skyline
    /// (domination needs p > γ, so fewer dominations at larger γ).
    #[test]
    fn skyline_grows_with_gamma(ds in dataset_strategy()) {
        let mut prev: Option<Vec<usize>> = None;
        for g in [0.5, 0.6, 0.75, 0.9, 1.0] {
            let sky = naive_skyline(&ds, Gamma::new(g).unwrap()).skyline;
            if let Some(p) = &prev {
                for kept in p {
                    prop_assert!(sky.contains(kept), "group {} lost at gamma {}", kept, g);
                }
            }
            prev = Some(sky);
        }
    }

    /// Asymmetry (Proposition 1) on random data at random γ ≥ .5.
    #[test]
    fn asymmetry_holds(ds in dataset_strategy(), gamma in gamma_strategy()) {
        prop_assert_eq!(properties::check_asymmetry(&ds, gamma), None);
    }

    /// Weak transitivity at the *corrected* threshold `γ̄ = (1+γ)/2`: for
    /// random group triples, if both edges exceed γ̄ then R ≻_γ T. (The paper's
    /// printed threshold `1 − √(1−γ)/2` admits counterexamples — see the
    /// unit test `paper_weak_transitivity_bound_has_a_counterexample` in
    /// the core crate — so the property is asserted for the sound bound.)
    #[test]
    fn weak_transitivity_holds_at_corrected_bar(ds in dataset_strategy(),
                                                gamma in gamma_strategy()) {
        let n = ds.n_groups();
        if n < 3 { return Ok(()); }
        for r in 0..n {
            for s in 0..n {
                for t in 0..n {
                    if r == s || s == t || r == t { continue; }
                    let p_rs = aggsky::domination_probability(&ds, r, s);
                    let p_st = aggsky::domination_probability(&ds, s, t);
                    if gamma.strongly_dominated_corrected(p_rs)
                        && gamma.strongly_dominated_corrected(p_st)
                    {
                        let p_rt = aggsky::domination_probability(&ds, r, t);
                        prop_assert!(
                            gamma.dominated(p_rt),
                            "weak transitivity violated: p_rs={} p_st={} p_rt={} gamma={}",
                            p_rs, p_st, p_rt, gamma
                        );
                    }
                }
            }
        }
    }

    /// The additive lower bound behind the corrected threshold:
    /// p(R ≻ T) ≥ p(R ≻ S) + p(S ≻ T) − 1, on any data (overlapping
    /// witness fractions force transitive record dominance).
    #[test]
    fn additive_lower_bound_on_transitive_domination(ds in dataset_strategy()) {
        let n = ds.n_groups();
        if n < 3 { return Ok(()); }
        for r in 0..n {
            for s in 0..n {
                for t in 0..n {
                    if r == s || s == t || r == t { continue; }
                    let p_rs = aggsky::domination_probability(&ds, r, s);
                    let p_st = aggsky::domination_probability(&ds, s, t);
                    let p_rt = aggsky::domination_probability(&ds, r, t);
                    prop_assert!(
                        p_rt >= p_rs + p_st - 1.0 - 1e-12,
                        "additive bound violated: {} < {} + {} - 1", p_rt, p_rs, p_st
                    );
                }
            }
        }
    }

    /// Stability to updates (Property 2) under random record removals.
    #[test]
    fn update_stability_bounds_hold(ds in dataset_strategy(), keep in 1usize..=4) {
        let n = ds.n_groups();
        if n < 2 { return Ok(()); }
        for r in 0..n {
            let len = ds.group_len(r);
            if len < 2 { continue; }
            // Remove all but `keep` records (at least one stays).
            let removed: Vec<usize> = (keep.min(len - 1)..len).collect();
            if removed.is_empty() { continue; }
            for s in 0..n {
                if s == r { continue; }
                let res = properties::check_update_stability(&ds, r, s, &removed).unwrap();
                prop_assert!(res.within_bounds, "r={} s={} {:?}", r, s, res);
            }
        }
    }

    /// Stability to monotone transformations (Proposition 2).
    #[test]
    fn monotone_transform_stability(ds in dataset_strategy()) {
        let cube = |v: f64| v * v * v;
        let expish = |v: f64| v.exp_m1();
        let affine = |v: f64| 3.0 * v + 7.0;
        let id = |v: f64| v;
        let fns: Vec<&dyn Fn(f64) -> f64> = vec![&cube, &expish, &affine, &id];
        let transforms: Vec<&dyn Fn(f64) -> f64> =
            (0..ds.dim()).map(|d| fns[d % fns.len()]).collect();
        let dev = properties::monotone_transform_deviation(&ds, &transforms).unwrap();
        prop_assert_eq!(dev, 0.0);
    }

    /// All sort strategies leave exact results unchanged.
    #[test]
    fn sort_strategies_preserve_results(ds in dataset_strategy()) {
        let oracle = naive_skyline(&ds, Gamma::DEFAULT).skyline;
        for sort in [
            SortStrategy::InsertionOrder,
            SortStrategy::CornerDistance,
            SortStrategy::SizeThenDistance,
        ] {
            let opts = AlgoOptions { sort, ..AlgoOptions::exact(Gamma::DEFAULT) };
            let r = Algorithm::Sorted.run_with(&ds, opts);
            prop_assert_eq!(&r.skyline, &oracle, "{:?}", sort);
            let r = Algorithm::Indexed.run_with(&ds, opts);
            prop_assert_eq!(&r.skyline, &oracle, "indexed {:?}", sort);
        }
    }
}
