//! Seeded differential testing: every optimized algorithm (in exact mode)
//! must agree with the exhaustive oracle on arbitrary inputs, and the
//! paper's theoretical properties must hold on random data.
//!
//! Each property loops over a fixed set of seeds feeding the in-tree
//! xoshiro256** generator, so the suite is fully deterministic and needs no
//! external property-testing framework; a failure message always names the
//! seed that reproduces it.

use aggsky::core::kernel::KernelConfig;
use aggsky::core::paircount::{compare_groups, compare_groups_exhaustive, PairOptions};
use aggsky::core::properties;
use aggsky::core::Stats;
use aggsky::datagen::Rng64;
use aggsky::{
    naive_skyline, parallel_skyline, AlgoOptions, Algorithm, Gamma, GroupedDataset,
    GroupedDatasetBuilder, SortStrategy,
};

const SEEDS: u64 = 64;

/// A grouped dataset with 1-12 groups of 1-8 records in 1-4 dims, values
/// drawn from a small integer grid (to generate plenty of ties and
/// exact-dominance edge cases) — the same shape the proptest strategy this
/// suite replaced used to draw.
fn random_grid_dataset(seed: u64) -> GroupedDataset {
    let mut rng = Rng64::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(seed));
    let dim = 1 + rng.index(4);
    let n_groups = 1 + rng.index(12);
    let mut b = GroupedDatasetBuilder::new(dim).trusted_labels();
    for g in 0..n_groups {
        let len = 1 + rng.index(8);
        let rows: Vec<Vec<f64>> =
            (0..len).map(|_| (0..dim).map(|_| rng.index(6) as f64).collect()).collect();
        b.push_group(format!("g{g}"), &rows).unwrap();
    }
    b.build().unwrap()
}

const GAMMAS: [f64; 5] = [0.5, 0.6, 0.75, 0.9, 1.0];

fn gamma_for(seed: u64) -> Gamma {
    Gamma::new(GAMMAS[(seed % GAMMAS.len() as u64) as usize]).unwrap()
}

/// Exact-pruning variants of every algorithm equal the oracle, with all
/// three counting kernels.
#[test]
fn exact_algorithms_match_oracle() {
    for seed in 0..SEEDS {
        let ds = random_grid_dataset(seed);
        let gamma = gamma_for(seed);
        let oracle = naive_skyline(&ds, gamma).skyline;
        for kernel in [KernelConfig::Exhaustive, KernelConfig::blocked(), KernelConfig::columnar()]
        {
            let opts = AlgoOptions { kernel, ..AlgoOptions::exact(gamma) };
            for algo in Algorithm::EVALUATED {
                let r = algo.run_with(&ds, opts).unwrap();
                assert_eq!(r.skyline, oracle, "{algo:?} {kernel:?} seed={seed}");
            }
        }
    }
}

/// The parallel extension equals the oracle at any thread count.
#[test]
fn parallel_matches_oracle() {
    for seed in 0..SEEDS {
        let ds = random_grid_dataset(seed);
        let gamma = gamma_for(seed);
        let threads = 1 + (seed % 4) as usize;
        let oracle = naive_skyline(&ds, gamma).skyline;
        assert_eq!(
            parallel_skyline(&ds, gamma, threads).unwrap().skyline,
            oracle,
            "seed={seed} threads={threads}"
        );
    }
}

/// Paper-pruning algorithms never lose a true skyline group (they may,
/// rarely, keep an extra one — the printed Algorithm 3's known gap).
#[test]
fn paper_algorithms_never_drop_skyline_groups() {
    for seed in 0..SEEDS {
        let ds = random_grid_dataset(seed);
        let gamma = gamma_for(seed);
        let oracle = naive_skyline(&ds, gamma).skyline;
        for algo in Algorithm::EVALUATED {
            let r = algo.run(&ds, gamma);
            for g in &oracle {
                assert!(r.skyline.contains(g), "{algo:?} dropped group {g} (seed={seed})");
            }
        }
    }
}

/// The stopping rule and bounding-box decomposition never change a pairwise
/// verdict.
#[test]
fn pair_verdicts_match_exhaustive() {
    for seed in 0..SEEDS {
        let ds = random_grid_dataset(seed);
        if ds.n_groups() < 2 {
            continue;
        }
        let gamma = gamma_for(seed);
        let boxes = aggsky::core::Mbb::of_all_groups(&ds);
        let oracle = compare_groups_exhaustive(&ds, 0, 1, gamma);
        for stop in [false, true] {
            for bbox in [false, true] {
                let mut stats = Stats::default();
                let v = compare_groups(
                    &ds,
                    0,
                    1,
                    gamma,
                    bbox.then_some((&boxes[0], &boxes[1])),
                    PairOptions { stop_rule: stop, need_bar: true, corrected_bar: false },
                    &mut stats,
                );
                assert_eq!(v, oracle, "stop={stop} bbox={bbox} seed={seed}");
            }
        }
    }
}

/// Monotonicity in γ: raising γ only ever grows the skyline (domination
/// needs p > γ, so fewer dominations at larger γ).
#[test]
fn skyline_grows_with_gamma() {
    for seed in 0..SEEDS {
        let ds = random_grid_dataset(seed);
        let mut prev: Option<Vec<usize>> = None;
        for g in GAMMAS {
            let sky = naive_skyline(&ds, Gamma::new(g).unwrap()).skyline;
            if let Some(p) = &prev {
                for kept in p {
                    assert!(sky.contains(kept), "group {kept} lost at gamma {g} (seed={seed})");
                }
            }
            prev = Some(sky);
        }
    }
}

/// Asymmetry (Proposition 1) on random data at each tested γ ≥ .5.
#[test]
fn asymmetry_holds() {
    for seed in 0..SEEDS {
        let ds = random_grid_dataset(seed);
        let gamma = gamma_for(seed);
        assert_eq!(properties::check_asymmetry(&ds, gamma), None, "seed={seed}");
    }
}

/// Weak transitivity at the *corrected* threshold `γ̄ = (1+γ)/2`: for random
/// group triples, if both edges exceed γ̄ then R ≻_γ T. (The paper's printed
/// threshold `1 − √(1−γ)/2` admits counterexamples — see the unit test
/// `paper_weak_transitivity_bound_has_a_counterexample` in the core crate —
/// so the property is asserted for the sound bound.)
#[test]
fn weak_transitivity_holds_at_corrected_bar() {
    for seed in 0..SEEDS {
        let ds = random_grid_dataset(seed);
        let gamma = gamma_for(seed);
        let n = ds.n_groups();
        for r in 0..n {
            for s in 0..n {
                for t in 0..n {
                    if r == s || s == t || r == t {
                        continue;
                    }
                    let p_rs = aggsky::domination_probability(&ds, r, s);
                    let p_st = aggsky::domination_probability(&ds, s, t);
                    if gamma.strongly_dominated_corrected(p_rs)
                        && gamma.strongly_dominated_corrected(p_st)
                    {
                        let p_rt = aggsky::domination_probability(&ds, r, t);
                        assert!(
                            gamma.dominated(p_rt),
                            "weak transitivity violated (seed={seed}): \
                             p_rs={p_rs} p_st={p_st} p_rt={p_rt} gamma={gamma:?}"
                        );
                    }
                }
            }
        }
    }
}

/// The additive lower bound behind the corrected threshold:
/// p(R ≻ T) ≥ p(R ≻ S) + p(S ≻ T) − 1, on any data (overlapping witness
/// fractions force transitive record dominance).
#[test]
fn additive_lower_bound_on_transitive_domination() {
    for seed in 0..SEEDS {
        let ds = random_grid_dataset(seed);
        let n = ds.n_groups();
        for r in 0..n {
            for s in 0..n {
                for t in 0..n {
                    if r == s || s == t || r == t {
                        continue;
                    }
                    let p_rs = aggsky::domination_probability(&ds, r, s);
                    let p_st = aggsky::domination_probability(&ds, s, t);
                    let p_rt = aggsky::domination_probability(&ds, r, t);
                    assert!(
                        p_rt >= p_rs + p_st - 1.0 - 1e-12,
                        "additive bound violated (seed={seed}): {p_rt} < {p_rs} + {p_st} - 1"
                    );
                }
            }
        }
    }
}

/// Stability to updates (Property 2) under random record removals.
#[test]
fn update_stability_bounds_hold() {
    for seed in 0..SEEDS {
        let ds = random_grid_dataset(seed);
        let keep = 1 + (seed % 4) as usize;
        let n = ds.n_groups();
        if n < 2 {
            continue;
        }
        for r in 0..n {
            let len = ds.group_len(r);
            if len < 2 {
                continue;
            }
            // Remove all but `keep` records (at least one stays).
            let removed: Vec<usize> = (keep.min(len - 1)..len).collect();
            if removed.is_empty() {
                continue;
            }
            for s in 0..n {
                if s == r {
                    continue;
                }
                let res = properties::check_update_stability(&ds, r, s, &removed).unwrap();
                assert!(res.within_bounds, "seed={seed} r={r} s={s} {res:?}");
            }
        }
    }
}

/// Stability to monotone transformations (Proposition 2).
#[test]
fn monotone_transform_stability() {
    for seed in 0..SEEDS {
        let ds = random_grid_dataset(seed);
        let cube = |v: f64| v * v * v;
        let expish = |v: f64| v.exp_m1();
        let affine = |v: f64| 3.0 * v + 7.0;
        let id = |v: f64| v;
        let fns: Vec<&dyn Fn(f64) -> f64> = vec![&cube, &expish, &affine, &id];
        let transforms: Vec<&dyn Fn(f64) -> f64> =
            (0..ds.dim()).map(|d| fns[d % fns.len()]).collect();
        let dev = properties::monotone_transform_deviation(&ds, &transforms).unwrap();
        assert_eq!(dev, 0.0, "seed={seed}");
    }
}

/// All sort strategies leave exact results unchanged.
#[test]
fn sort_strategies_preserve_results() {
    for seed in 0..SEEDS {
        let ds = random_grid_dataset(seed);
        let oracle = naive_skyline(&ds, Gamma::DEFAULT).skyline;
        for sort in [
            SortStrategy::InsertionOrder,
            SortStrategy::CornerDistance,
            SortStrategy::SizeThenDistance,
        ] {
            let opts = AlgoOptions { sort, ..AlgoOptions::exact(Gamma::DEFAULT) };
            let r = Algorithm::Sorted.run_with(&ds, opts).unwrap();
            assert_eq!(r.skyline, oracle, "{sort:?} seed={seed}");
            let r = Algorithm::Indexed.run_with(&ds, opts).unwrap();
            assert_eq!(r.skyline, oracle, "indexed {sort:?} seed={seed}");
        }
    }
}
