//! Cross-algorithm execution-control contract (no chaos feature needed):
//! budget exhaustion and cancellation must interrupt every algorithm with a
//! typed partial result whose confirmed sets agree with the exact verdict,
//! and an unlimited context must change nothing.

use aggsky::core::{parallel_skyline_ctx, KernelConfig};
use aggsky::{
    anytime_resume, anytime_skyline, naive_skyline, AlgoOptions, Algorithm, Gamma, GroupedDataset,
    InterruptReason, Outcome, RunContext,
};
use aggsky_datagen::{Distribution, SyntheticConfig};

const ALL: [Algorithm; 6] = [
    Algorithm::Naive,
    Algorithm::NestedLoop,
    Algorithm::Transitive,
    Algorithm::Sorted,
    Algorithm::Indexed,
    Algorithm::IndexedBbox,
];

fn dataset(seed: u64) -> GroupedDataset {
    SyntheticConfig {
        n_records: 240,
        n_groups: 24,
        dim: 3,
        seed,
        ..SyntheticConfig::paper_default(Distribution::AntiCorrelated)
    }
    .generate()
}

#[test]
fn unlimited_context_is_identical_to_plain_runs() {
    for seed in [11, 12] {
        let ds = dataset(seed);
        let opts = AlgoOptions::exact(Gamma::DEFAULT);
        for algo in ALL {
            let plain = algo.run_with(&ds, opts).unwrap();
            match algo.run_ctx(&ds, opts, &RunContext::unlimited()).unwrap() {
                Outcome::Complete(r) => {
                    assert_eq!(r.skyline, plain.skyline, "{algo:?} seed {seed}");
                    assert_eq!(r.stats, plain.stats, "{algo:?} seed {seed}");
                }
                Outcome::Interrupted { reason, .. } => {
                    panic!("{algo:?} interrupted without limits: {reason}")
                }
            }
        }
    }
}

#[test]
fn budget_exhaustion_interrupts_every_algorithm_soundly() {
    for seed in [21, 22, 23] {
        let ds = dataset(seed);
        let exact = naive_skyline(&ds, Gamma::DEFAULT).skyline;
        let opts = AlgoOptions::exact(Gamma::DEFAULT);
        for algo in ALL {
            for budget in [1u64, 300, 3000] {
                let ctx = RunContext::with_budget(budget);
                match algo.run_ctx(&ds, opts, &ctx).unwrap() {
                    Outcome::Complete(r) => {
                        // A tiny budget may still complete tiny work: then
                        // the answer must simply be exact.
                        assert_eq!(r.skyline, exact, "{algo:?} seed {seed} budget {budget}");
                    }
                    Outcome::Interrupted { reason, partial } => {
                        assert_eq!(reason, InterruptReason::BudgetExhausted);
                        for g in &partial.confirmed_in {
                            assert!(
                                exact.contains(g),
                                "{algo:?} budget {budget}: {g} wrongly confirmed in"
                            );
                        }
                        for g in &partial.confirmed_out {
                            assert!(
                                !exact.contains(g),
                                "{algo:?} budget {budget}: {g} wrongly confirmed out"
                            );
                        }
                        let total = partial.confirmed_in.len()
                            + partial.confirmed_out.len()
                            + partial.undecided.len();
                        assert_eq!(total, ds.n_groups(), "{algo:?}: partition covers all groups");
                        assert!(
                            partial.stats.record_pairs >= budget,
                            "{algo:?}: interrupted before the budget was actually spent"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn budget_exhaustion_interrupts_the_parallel_scheduler_soundly() {
    for seed in [31, 32] {
        let ds = dataset(seed);
        let exact = naive_skyline(&ds, Gamma::DEFAULT).skyline;
        for threads in [1usize, 3] {
            let ctx = RunContext::with_budget(50);
            let outcome =
                parallel_skyline_ctx(&ds, Gamma::DEFAULT, threads, KernelConfig::blocked(), &ctx)
                    .unwrap();
            match outcome {
                Outcome::Complete(r) => assert_eq!(r.skyline, exact),
                Outcome::Interrupted { reason, partial } => {
                    assert_eq!(reason, InterruptReason::BudgetExhausted);
                    for g in &partial.confirmed_in {
                        assert!(exact.contains(g), "threads {threads}: {g} wrongly in");
                    }
                    for g in &partial.confirmed_out {
                        assert!(!exact.contains(g), "threads {threads}: {g} wrongly out");
                    }
                }
            }
        }
    }
}

#[test]
fn cancellation_interrupts_immediately() {
    let ds = dataset(41);
    let opts = AlgoOptions::exact(Gamma::DEFAULT);
    for algo in ALL {
        let ctx = RunContext::unlimited();
        ctx.cancel_token().cancel();
        match algo.run_ctx(&ds, opts, &ctx).unwrap() {
            Outcome::Interrupted { reason, partial } => {
                assert_eq!(reason, InterruptReason::Cancelled, "{algo:?}");
                assert_eq!(partial.stats.record_pairs, 0, "{algo:?} spent work after cancel");
            }
            Outcome::Complete(_) => panic!("{algo:?} ignored cancellation"),
        }
    }
}

#[test]
fn anytime_resume_chain_reaches_the_exact_answer() {
    let ds = dataset(51);
    let exact = naive_skyline(&ds, Gamma::DEFAULT).skyline;
    let mut r = anytime_skyline(&ds, Gamma::DEFAULT, 500);
    let mut rounds = 0;
    while !r.is_complete() {
        r = anytime_resume(&ds, Gamma::DEFAULT, 500, &r).expect("in-memory checkpoint is valid");
        rounds += 1;
        assert!(rounds < 100_000, "resume chain did not converge");
    }
    assert_eq!(r.confirmed_in, exact);
}
