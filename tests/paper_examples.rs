//! End-to-end checks of every worked example in the paper, through the
//! facade crate's public API.

use aggsky::core::record_skyline::{bnl, sfs};
use aggsky::core::DominationMatrix;
use aggsky::{
    domination_probability, gamma_dominates, naive_skyline, Algorithm, Gamma, GroupedDatasetBuilder,
};
use aggsky_datagen::{figure5_directors, movie_table, movies_by_director};

/// Figure 2: the record skyline of the Figure 1 table is
/// {Pulp Fiction, The Godfather}.
#[test]
fn figure_2_record_skyline() {
    let movies = movie_table();
    let flat: Vec<f64> = movies.iter().flat_map(|m| [m.popularity, m.quality]).collect();
    for algo in [bnl, sfs] {
        let sky = algo(&flat, 2);
        let titles: Vec<&str> = sky.iter().map(|&i| movies[i].title).collect();
        assert_eq!(titles, vec!["Pulp Fiction", "The Godfather"]);
    }
}

/// Figure 4(b): the aggregate skyline of the movie table grouped by
/// director is {Coppola, Jackson, Kershner, Tarantino} — strictly more than
/// either sequential composition of group-by and skyline returns.
#[test]
fn figure_4b_aggregate_skyline_every_algorithm() {
    let ds = movies_by_director();
    let expected = vec!["Coppola", "Jackson", "Kershner", "Tarantino"];
    assert_eq!(ds.sorted_labels(&naive_skyline(&ds, Gamma::DEFAULT).skyline), expected);
    for algo in Algorithm::EVALUATED {
        let r = algo.run(&ds, Gamma::DEFAULT);
        assert_eq!(ds.sorted_labels(&r.skyline), expected, "{algo:?}");
    }
    let par = aggsky::parallel_skyline(&ds, Gamma::DEFAULT, 4).unwrap();
    assert_eq!(ds.sorted_labels(&par.skyline), expected);
}

/// Figure 4(a): the sequential alternatives select only Tarantino and
/// Coppola, illustrating what the aggregate operator adds.
#[test]
fn figure_4a_sequential_composition_loses_directors() {
    let movies = movie_table();
    let flat: Vec<f64> = movies.iter().flat_map(|m| [m.popularity, m.quality]).collect();
    let mut directors: Vec<&str> = bnl(&flat, 2).into_iter().map(|i| movies[i].director).collect();
    directors.sort_unstable();
    directors.dedup();
    assert_eq!(directors, vec!["Coppola", "Tarantino"]);
}

/// Table 2, rounded to the paper's two decimals.
#[test]
fn table_2_probabilities() {
    let ds = figure5_directors();
    let p = |s: &str, r: &str| {
        let p = domination_probability(
            &ds,
            ds.group_by_label(s).unwrap(),
            ds.group_by_label(r).unwrap(),
        );
        (p * 100.0).round() / 100.0
    };
    assert_eq!(p("Tarantino", "Wiseau"), 1.00);
    assert_eq!(p("Tarantino", "Fleischer"), 0.94);
    assert_eq!(p("Tarantino", "Jackson"), 0.68);
    assert_eq!(p("Wiseau", "Tarantino"), 0.00);
    assert_eq!(p("Fleischer", "Tarantino"), 0.06);
    assert_eq!(p("Jackson", "Tarantino"), 0.26);
}

/// Section 2.2: at γ = .5 Tarantino γ-dominates Fleischer, and the reverse
/// direction is impossible for any valid γ (asymmetry).
#[test]
fn setting_gamma_narrative() {
    let ds = figure5_directors();
    let t = ds.group_by_label("Tarantino").unwrap();
    let f = ds.group_by_label("Fleischer").unwrap();
    assert!(gamma_dominates(&ds, t, f, Gamma::DEFAULT));
    for g in [0.5, 0.7, 0.9, 1.0] {
        assert!(!gamma_dominates(&ds, f, t, Gamma::new(g).unwrap()));
    }
    // Tarantino γ-dominates Fleischer for all γ < .94 — and .94 is above
    // every γ̄-style threshold here, so also at γ̄(0.5).
    assert!(Gamma::DEFAULT.strongly_dominated(domination_probability(&ds, t, f)));
}

/// Proposition 3's counterexample: skyline containment fails.
#[test]
fn proposition_3_skyline_containment_fails() {
    let mut b = GroupedDatasetBuilder::new(2);
    let g1 = b.push_group("G1", &[vec![5.0, 5.0], vec![1.0, 1.0], vec![1.0, 2.0]]).unwrap();
    let g2 = b.push_group("G2", &[vec![2.0, 3.0]]).unwrap();
    let ds = b.build().unwrap();
    // (5,5) is the record skyline and lives in G1...
    let flat: Vec<f64> = (0..ds.n_groups()).flat_map(|g| ds.group_rows(g).to_vec()).collect();
    assert_eq!(bnl(&flat, 2), vec![0]);
    // ...yet G1 is not in the aggregate skyline at γ = .5.
    let sky = naive_skyline(&ds, Gamma::DEFAULT).skyline;
    assert!(!sky.contains(&g1));
    assert!(sky.contains(&g2));
}

/// Proposition 4 / Figure 6: transitivity fails; the proof's domination
/// matrices behave exactly as printed.
#[test]
fn proposition_4_transitivity_fails_via_matrices() {
    let rs =
        DominationMatrix::from_bits(4, 2, vec![true, false, true, true, true, false, true, false]);
    let st = DominationMatrix::from_bits(2, 3, vec![true, false, false, true, true, true]);
    let rt = rs.product(&st);
    assert!(rs.pos() > 0.5);
    assert!(st.pos() > 0.5);
    assert!(rt.pos() <= 0.5, "R must not gamma-dominate T at gamma = .5");
}

/// The γ = 1 case: only strict (p = 1) dominance excludes groups.
#[test]
fn gamma_one_keeps_everything_not_strictly_dominated() {
    let ds = figure5_directors();
    let sky = naive_skyline(&ds, Gamma::new(1.0).unwrap()).skyline;
    // Wiseau is strictly dominated (p = 1); everyone else survives at γ=1.
    let labels = ds.sorted_labels(&sky);
    assert_eq!(labels, vec!["Fleischer", "Jackson", "Tarantino"]);
}

/// MIN-direction support: the movie example with `year MIN` (prefer older
/// classics) changes the result in the expected direction.
#[test]
fn min_directions_are_supported() {
    use aggsky::Direction;
    let movies = movie_table();
    let mut b = GroupedDatasetBuilder::with_directions(vec![Direction::Min, Direction::Max]);
    for m in &movies {
        // One group per movie: a record skyline through the group API.
        b.push_group(m.title, &[vec![m.year as f64, m.quality]]).unwrap();
    }
    let ds = b.build().unwrap();
    let sky = naive_skyline(&ds, Gamma::DEFAULT).skyline;
    let labels = ds.sorted_labels(&sky);
    assert!(labels.contains(&"The Godfather"), "oldest + best: {labels:?}");
    assert!(!labels.contains(&"The Room"));
}

/// The skycube extension: on the movie data, the all-round winners are
/// exactly the directors surviving every criterion subset.
#[test]
fn skycube_on_movie_directors() {
    use aggsky::core::skycube;
    let ds = aggsky_datagen::movies_by_director();
    let cube = skycube::skycube(&ds, Gamma::DEFAULT).unwrap();
    assert_eq!(cube.subspaces.len(), 3);
    // Full space = Figure 4(b).
    let full = cube.skyline_of(&[0, 1]).unwrap().to_vec();
    assert_eq!(ds.sorted_labels(&full), vec!["Coppola", "Jackson", "Kershner", "Tarantino"]);
    // Universal winners must sit in the full-space skyline too.
    for g in cube.universal_groups() {
        assert!(full.contains(&g), "{}", ds.label(g));
    }
}

/// Explanations agree with the membership the algorithms compute.
#[test]
fn explanations_match_membership() {
    use aggsky::core::explain::explain_membership;
    let ds = aggsky_datagen::movies_by_director();
    let sky = naive_skyline(&ds, Gamma::DEFAULT).skyline;
    for g in ds.group_ids() {
        let m = explain_membership(&ds, g, Gamma::DEFAULT);
        assert_eq!(m.in_skyline, sky.contains(&g), "{}", ds.label(g));
    }
}

/// The incremental engine and the batch algorithms agree after mutations
/// applied to the paper's running example.
#[test]
fn dynamic_engine_tracks_the_movie_example() {
    use aggsky::DynamicAggregateSkyline;
    let ds = aggsky_datagen::movies_by_director();
    let mut dynamic = DynamicAggregateSkyline::from_dataset(&ds).unwrap();
    // Nolan releases a monster hit: enters the skyline.
    let nolan = ds.group_by_label("Nolan").unwrap();
    dynamic.insert(nolan, &[900.0, 9.5]).unwrap();
    let sky = dynamic.skyline(Gamma::DEFAULT).unwrap();
    let labels: Vec<&str> = sky.iter().map(|&g| dynamic.label(g)).collect();
    assert!(labels.contains(&"Nolan"), "{labels:?}");
    // Cross-check against a batch recompute on the snapshot.
    let (snap, mapping) = dynamic.snapshot().unwrap();
    let batch: Vec<usize> =
        naive_skyline(&snap, Gamma::DEFAULT).skyline.into_iter().map(|g| mapping[g]).collect();
    assert_eq!(sky, batch);
}
