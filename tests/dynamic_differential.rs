//! Differential suite for incremental skyline maintenance and epoch-based
//! serving: seeded mixed insert/delete streams driven through
//! [`DynamicAggregateSkyline`] and [`SkylineService`] must stay
//! *bit-identical* to from-scratch recomputation at every step — same
//! skylines (against the naive oracle and the indexed algorithm under both
//! paper and exact options), same exact pair tallies (against the
//! exhaustive `domination_count`), and same `Stats` between the
//! scalar-pinned and the auto (AVX2 when available) columnar counting
//! kernels — across d ∈ {1, 2, 4, 8}.
//!
//! The chaos half (build with `--features chaos`) injects a panic into the
//! writer's forced recount mid-epoch and asserts the previously published
//! epoch keeps serving unchanged, then that a clean retry converges.

use aggsky::core::dynamic::DynamicAggregateSkyline;
use aggsky::core::gamma::domination_count;
use aggsky::core::KernelConfig;
use aggsky::datagen::Rng64;
use aggsky::{naive_skyline, AlgoOptions, Algorithm, Gamma, RunContext};

const DIMS: [usize; 4] = [1, 2, 4, 8];
const SEEDS: [u64; 2] = [0xD1FF, 0xBEEF];
const N_GROUPS: usize = 6;
const STEPS: usize = 12;
const OPS_PER_STEP: usize = 5;

/// One seeded op: inserts dominate the stream 4:1 so groups grow, and the
/// small integer grid maximizes ties and γ-boundary tallies.
fn apply_random_op(engine: &mut DynamicAggregateSkyline, dim: usize, rng: &mut Rng64) {
    let g = rng.index(N_GROUPS);
    let delete = rng.index(5) == 0 && engine.group_len(g) > 0;
    if delete {
        let idx = rng.index(engine.group_len(g));
        engine.remove(g, idx).expect("live index is valid");
    } else {
        let rec: Vec<f64> = (0..dim).map(|_| rng.index(4) as f64).collect();
        engine.insert(g, &rec).expect("finite record");
    }
}

/// Runs the full seeded stream, collecting the incremental skyline's
/// sorted labels after every step.
fn drive_stream(
    engine: &mut DynamicAggregateSkyline,
    dim: usize,
    rng: &mut Rng64,
    gamma: Gamma,
) -> Vec<Vec<String>> {
    for g in 0..N_GROUPS {
        let id = engine.add_group(format!("g{g}"));
        assert_eq!(id, g);
    }
    let mut per_step = Vec::with_capacity(STEPS);
    for _ in 0..STEPS {
        for _ in 0..OPS_PER_STEP {
            apply_random_op(engine, dim, rng);
        }
        let skyline = engine.skyline(gamma).expect("unlimited skyline");
        let mut labels: Vec<String> =
            skyline.iter().map(|&g| engine.label(g).to_string()).collect();
        labels.sort_unstable();
        per_step.push(labels);
    }
    per_step
}

/// The from-scratch answers for the engine's current live rows: the naive
/// oracle plus the indexed algorithm under both option presets — all three
/// must agree with each other before serving as the reference.
fn oracle_labels(engine: &DynamicAggregateSkyline, gamma: Gamma) -> Vec<String> {
    let (snap, _mapping) = engine.snapshot().expect("snapshot of live rows");
    let naive = naive_skyline(&snap, gamma);
    let paper = Algorithm::Indexed.run_with(&snap, AlgoOptions::paper(gamma)).expect("paper run");
    let exact = Algorithm::Indexed.run_with(&snap, AlgoOptions::exact(gamma)).expect("exact run");
    assert_eq!(
        snap.sorted_labels(&naive.skyline),
        snap.sorted_labels(&paper.skyline),
        "indexed(paper options) deviates from the naive oracle"
    );
    assert_eq!(
        snap.sorted_labels(&naive.skyline),
        snap.sorted_labels(&exact.skyline),
        "indexed(exact options) deviates from the naive oracle"
    );
    let mut labels: Vec<String> =
        naive.skyline.iter().map(|&si| snap.label(si).to_string()).collect();
    labels.sort_unstable();
    labels
}

#[test]
fn mixed_streams_match_from_scratch_recomputation_at_every_step() {
    let gamma = Gamma::DEFAULT;
    for dim in DIMS {
        for seed in SEEDS {
            let mut rng = Rng64::new(seed.wrapping_mul(31).wrapping_add(dim as u64));
            let mut engine = DynamicAggregateSkyline::new(dim);
            for g in 0..N_GROUPS {
                engine.add_group(format!("g{g}"));
            }
            for step in 0..STEPS {
                for _ in 0..OPS_PER_STEP {
                    apply_random_op(&mut engine, dim, &mut rng);
                }
                let skyline = engine.skyline(gamma).expect("unlimited skyline");
                let mut live: Vec<String> =
                    skyline.iter().map(|&g| engine.label(g).to_string()).collect();
                live.sort_unstable();
                assert_eq!(
                    live,
                    oracle_labels(&engine, gamma),
                    "d={dim} seed={seed} step={step}: incremental skyline deviates from scratch"
                );
            }
        }
    }
}

#[test]
fn flushed_tallies_are_bit_identical_to_exhaustive_counts() {
    let gamma = Gamma::DEFAULT;
    for dim in DIMS {
        for seed in SEEDS {
            let mut rng = Rng64::new(seed.wrapping_add(dim as u64));
            let mut engine = DynamicAggregateSkyline::new(dim);
            drive_stream(&mut engine, dim, &mut rng, gamma);
            engine.flush_ctx(&RunContext::unlimited()).expect("unlimited flush");
            let (snap, mapping) = engine.snapshot().expect("snapshot");
            // Reverse map engine id -> snapshot id for live groups.
            let mut rev = vec![usize::MAX; engine.n_groups()];
            for (si, &g) in mapping.iter().enumerate() {
                rev[g] = si;
            }
            let mut checked = 0usize;
            for ((lo, hi), t) in engine.export_tallies() {
                let (slo, shi) = (rev[lo], rev[hi]);
                if slo == usize::MAX || shi == usize::MAX {
                    continue;
                }
                assert!(t.complete(), "d={dim} seed={seed}: flushed tally must be complete");
                assert_eq!(
                    t.n12,
                    domination_count(&snap, slo, shi),
                    "d={dim} seed={seed} pair ({lo},{hi}): n12 drifted"
                );
                assert_eq!(
                    t.n21,
                    domination_count(&snap, shi, slo),
                    "d={dim} seed={seed} pair ({lo},{hi}): n21 drifted"
                );
                checked += 1;
            }
            assert!(checked > 0, "d={dim} seed={seed}: no live pair tallies to check");
        }
    }
}

/// The scalar-pinned columnar kernel and the auto kernel (AVX2 on capable
/// hosts, scalar elsewhere) must produce identical skylines, tallies and
/// `Stats` on the same stream. On a non-AVX2 host the two configurations
/// run the same code and the assert degrades to a determinism check of the
/// engine itself.
#[test]
fn scalar_and_auto_kernels_are_bit_identical_on_the_same_stream() {
    let gamma = Gamma::DEFAULT;
    for dim in DIMS {
        for seed in SEEDS {
            let mut scalar =
                DynamicAggregateSkyline::with_kernel(dim, KernelConfig::columnar_scalar())
                    .expect("valid block size");
            let mut auto = DynamicAggregateSkyline::with_kernel(dim, KernelConfig::columnar())
                .expect("valid block size");
            let mut rng_a = Rng64::new(seed ^ dim as u64);
            let mut rng_b = Rng64::new(seed ^ dim as u64);
            let steps_a = drive_stream(&mut scalar, dim, &mut rng_a, gamma);
            let steps_b = drive_stream(&mut auto, dim, &mut rng_b, gamma);
            assert_eq!(steps_a, steps_b, "d={dim} seed={seed}: skylines diverged");
            assert_eq!(
                scalar.export_tallies(),
                auto.export_tallies(),
                "d={dim} seed={seed}: tallies diverged"
            );
            assert_eq!(
                scalar.stats(),
                auto.stats(),
                "d={dim} seed={seed}: Stats diverged between scalar and auto kernels"
            );
        }
    }
}

#[cfg(feature = "chaos")]
mod chaos {
    use aggsky::core::{FaultPlan, SkylineService, WriteBatch};
    use aggsky::{naive_skyline, Gamma, RunContext};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A writer panic injected into the forced recount mid-epoch must leave
    /// the previously published epoch serving unchanged; a clean retry of
    /// the same backlog then converges to the from-scratch answer.
    #[test]
    fn writer_panic_mid_epoch_leaves_the_published_epoch_intact() {
        let svc = SkylineService::new(2, Gamma::DEFAULT).expect("2-dim service");
        let seed = WriteBatch::new()
            .insert("a", &[3.0, 1.0])
            .insert("a", &[1.0, 3.0])
            .insert("b", &[2.0, 2.0])
            .insert("c", &[0.0, 0.0]);
        svc.apply(&seed).expect("seed apply");
        let before = svc.current();
        let before_labels = before.skyline_labels();

        // (2.5, 2.5) straddles a's records (dominates neither corner), so
        // certifying the next skyline must compare record pairs — and the
        // injected fault panics inside exactly that recount.
        let batch = WriteBatch::new().insert("c", &[2.5, 2.5]);
        let chaos_ctx = RunContext::unlimited().with_fault(FaultPlan::panic_at_pair(1));
        let outcome = catch_unwind(AssertUnwindSafe(|| svc.apply_ctx(&batch, &chaos_ctx)));
        assert!(outcome.is_err(), "the fault plan must actually fire");

        let after = svc.current();
        assert_eq!(after.id(), before.id(), "a panicked apply must publish nothing");
        assert_eq!(after.skyline_labels(), before_labels, "old epoch keeps serving");

        // The absorbed op stayed pending; a clean empty retry publishes it
        // and converges to the from-scratch answer over the live rows.
        let receipt = svc.apply(&WriteBatch::new()).expect("clean retry");
        assert!(receipt.interrupted.is_none());
        let healed = svc.current();
        assert_eq!(healed.id(), before.id() + 1);
        let mut labels = healed.skyline_labels();
        labels.sort_unstable();
        let oracle = naive_skyline(healed.dataset(), Gamma::DEFAULT);
        assert_eq!(labels, healed.dataset().sorted_labels(&oracle.skyline));
        assert_eq!(healed.dataset().n_records(), 5, "the pending insert landed");
    }
}
