//! Determinism contract of the tracing layer: a sequential run under a
//! `TraceRecorder` is a pure function of (dataset, options, budget) — two
//! identical runs must export byte-identical Chrome traces, Prometheus
//! text, and summary trees. Everything on the counting path is stamped
//! with the virtual tick clock, never wall time, so this holds across
//! machines and reruns.

use aggsky::core::obs::{
    export_chrome, export_prometheus, render_summary, FlightRecorder, TraceRecorder,
};
use aggsky::core::{AlgoOptions, Algorithm, KernelConfig, RunContext};
use aggsky::datagen::Rng64;
use aggsky::{Gamma, GroupedDataset, GroupedDatasetBuilder};
use std::sync::Arc;

fn random_dataset(seed: u64, n_groups: usize, max_len: usize) -> GroupedDataset {
    let mut rng = Rng64::new(seed);
    let mut b = GroupedDatasetBuilder::new(3).trusted_labels();
    for g in 0..n_groups {
        let len = 1 + rng.index(max_len);
        let rows: Vec<Vec<f64>> = (0..len)
            .map(|_| vec![rng.index(50) as f64, rng.index(50) as f64, rng.index(50) as f64])
            .collect();
        b.push_group(format!("g{g}"), &rows).unwrap();
    }
    b.build().unwrap()
}

/// One traced sequential run; returns all three exports.
fn traced_run(
    ds: &GroupedDataset,
    algorithm: Algorithm,
    opts: AlgoOptions,
    budget: u64,
) -> (String, String, String) {
    let rec = Arc::new(TraceRecorder::new());
    let ctx = if budget == 0 { RunContext::unlimited() } else { RunContext::with_budget(budget) };
    let ctx = ctx.with_recorder(rec.clone());
    let _ = algorithm.run_ctx(ds, opts, &ctx).unwrap();
    let snapshot = rec.snapshot();
    (export_chrome(&snapshot), export_prometheus(&snapshot.metrics), render_summary(&snapshot))
}

#[test]
fn same_seed_runs_export_byte_identical_traces() {
    for algorithm in [
        Algorithm::NestedLoop,
        Algorithm::Transitive,
        Algorithm::Sorted,
        Algorithm::Indexed,
        Algorithm::IndexedBbox,
    ] {
        let ds = random_dataset(91, 14, 6);
        let opts = AlgoOptions::exact(Gamma::DEFAULT);
        let (chrome_a, prom_a, summary_a) = traced_run(&ds, algorithm, opts, 0);
        let (chrome_b, prom_b, summary_b) = traced_run(&ds, algorithm, opts, 0);
        assert_eq!(chrome_a, chrome_b, "{algorithm:?}: chrome trace not deterministic");
        assert_eq!(prom_a, prom_b, "{algorithm:?}: prometheus export not deterministic");
        assert_eq!(summary_a, summary_b, "{algorithm:?}: summary not deterministic");
        assert!(chrome_a.contains("\"ph\":\"X\""), "{algorithm:?}: no complete spans");
        assert!(summary_a.contains("prepare"), "{algorithm:?}: prepare span missing");
    }
}

#[test]
fn budgeted_runs_are_equally_deterministic() {
    let ds = random_dataset(92, 16, 6);
    let opts =
        AlgoOptions { kernel: KernelConfig::blocked(), ..AlgoOptions::exact(Gamma::DEFAULT) };
    let (chrome_a, prom_a, _) = traced_run(&ds, Algorithm::Indexed, opts, 200);
    let (chrome_b, prom_b, _) = traced_run(&ds, Algorithm::Indexed, opts, 200);
    assert_eq!(chrome_a, chrome_b, "interrupted trace not deterministic");
    assert_eq!(prom_a, prom_b);
}

#[test]
fn trace_structure_is_pinned() {
    // A golden structural check: the first line opens the JSON array, the
    // first event is the main-track thread_name metadata, every span on
    // the counting path carries the tick clock domain, and the export is
    // Perfetto-loadable JSON (balanced brackets, one event per line).
    let ds = random_dataset(93, 10, 5);
    let (chrome, prom, summary) =
        traced_run(&ds, Algorithm::Indexed, AlgoOptions::exact(Gamma::DEFAULT), 0);
    let mut lines = chrome.lines();
    assert_eq!(lines.next(), Some("["));
    let first = lines.next().unwrap();
    assert!(first.contains("thread_name"), "metadata first: {first}");
    assert!(first.contains("\"main\""), "main track named: {first}");
    assert!(chrome.contains("\"cat\":\"tick\""), "tick clock domain missing");
    assert!(!chrome.contains("\"cat\":\"wall\""), "wall stamps must not appear on counting paths");
    assert!(chrome.trim_end().ends_with(']'), "unterminated JSON array");
    aggsky::core::obs::validate_prometheus(&prom).unwrap();
    assert!(summary.contains("IN"), "algorithm span missing from summary:\n{summary}");
    assert!(summary.contains("counters:"), "counters section missing:\n{summary}");
}

#[test]
fn same_seed_flight_dumps_are_byte_identical() {
    // A budget-exhausted run auto-dumps the flight ring; the dump is a
    // pure function of (dataset, options, budget) because every entry is
    // tick-stamped.
    let ds = random_dataset(95, 16, 6);
    let opts =
        AlgoOptions { kernel: KernelConfig::blocked(), ..AlgoOptions::exact(Gamma::DEFAULT) };
    let run = || {
        let flight = Arc::new(FlightRecorder::new());
        let ctx = RunContext::with_budget(300).with_recorder(flight.clone());
        let _ = Algorithm::Indexed.run_ctx(&ds, opts, &ctx).unwrap();
        let dumps = flight.dumps();
        assert_eq!(dumps.len(), 1, "budget exhaustion dumps exactly once");
        assert_eq!(dumps[0].reason, "budget_exhausted");
        dumps[0].json.clone()
    };
    let a = run();
    assert_eq!(a, run(), "same-seed flight dumps diverged");
    assert!(a.contains("\"ph\":\"B\"") || a.contains("\"ph\":\"i\""), "ring held no events: {a}");
    assert!(!a.contains("\"cat\":\"wall\""), "wall stamps on the counting path: {a}");
}

#[test]
fn sketch_quantiles_are_deterministic_and_pinned() {
    // The paired BatchBlockPairs sketch (fed by the scheduler's batch
    // loop) must replay exactly and answer quantiles deterministically
    // across identical 1-worker runs.
    let ds = random_dataset(96, 14, 6);
    let run = || {
        let rec = Arc::new(TraceRecorder::new());
        let ctx = RunContext::unlimited().with_recorder(rec.clone());
        let _ = aggsky::core::parallel_skyline_ctx(
            &ds,
            Gamma::DEFAULT,
            1,
            KernelConfig::blocked(),
            &ctx,
        )
        .unwrap();
        rec.snapshot().metrics.sketch(aggsky::core::obs::metrics::Sketch::BatchBlockPairs)
    };
    let a = run();
    let b = run();
    assert_eq!(a.count, b.count);
    assert_eq!(a.max, b.max);
    assert_eq!(a.quantile(500), b.quantile(500));
    assert_eq!(a.quantile(990), b.quantile(990));
    assert!(a.count > 0, "blocked kernel feeds the batch sketch");
    assert!(a.quantile(500).unwrap() <= a.max);
}

#[test]
fn single_worker_parallel_trace_is_deterministic() {
    // With one worker the scheduler is sequential, so even the
    // worker-track spans and chunk-size histograms must replay exactly.
    let ds = random_dataset(94, 12, 5);
    let run = || {
        let rec = Arc::new(TraceRecorder::new());
        let ctx = RunContext::unlimited().with_recorder(rec.clone());
        let _ = aggsky::core::parallel_skyline_ctx(
            &ds,
            Gamma::DEFAULT,
            1,
            KernelConfig::blocked(),
            &ctx,
        )
        .unwrap();
        let snapshot = rec.snapshot();
        (export_chrome(&snapshot), export_prometheus(&snapshot.metrics))
    };
    let (chrome_a, prom_a) = run();
    let (chrome_b, prom_b) = run();
    assert_eq!(chrome_a, chrome_b, "1-worker parallel trace not deterministic");
    assert_eq!(prom_a, prom_b);
    assert!(chrome_a.contains("worker-0"), "worker track missing: {chrome_a}");
    assert!(
        chrome_a.contains("aggsky_batch_block_pairs")
            || prom_a.contains("aggsky_batch_block_pairs")
    );
}
