//! Implementation of the `aggsky` command-line tool.
//!
//! The binary in `src/bin/aggsky.rs` is a thin wrapper around
//! [`run_command`], which keeps the whole surface unit-testable.
//!
//! Subcommands:
//!
//! * `skyline --csv FILE --group COL [--gamma G] [--algorithm NL|TR|SI|IN|LO]
//!   [--min COL]... [--rank]` — aggregate skyline over a CSV file.
//! * `generate --dist anti|ind|corr --records N [--groups N] [--dim D]
//!   [--spread S] [--zipf EXP] [--seed S]` — emit a synthetic dataset as CSV.
//! * `sql FILE...` — execute semicolon-separated SQL statements from files
//!   (use `-` for stdin), printing each result table.

use crate::core::{
    parallel_skyline_ctx, ranked_skyline, render_profile_diff, resolve_threads, KernelConfig,
    ProfileSnapshot,
};
use crate::{AlgoOptions, Algorithm, Direction, Gamma, Outcome, Pruning, RunContext};
use aggsky_datagen::{
    parse_grouped_csv, to_grouped_csv, Distribution, GroupSizes, SyntheticConfig,
};
use aggsky_obs::{export_chrome, export_prometheus, Counter, FlightRecorder, Hist, TraceRecorder};
use std::fmt::Write as _;
use std::sync::Arc;

/// A CLI failure: the message is printed to stderr with exit code 1.
pub type CliError = String;

/// Executes one subcommand, returning the text to print on stdout.
pub fn run_command(args: &[String]) -> Result<String, CliError> {
    match args.first().map(String::as_str) {
        Some("skyline") => skyline_command(&args[1..]),
        Some("generate") => generate_command(&args[1..]),
        Some("sql") => sql_command(&args[1..]),
        Some("profile") => profile_command(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => Ok(usage()),
        Some(other) => Err(format!("unknown subcommand {other:?}\n\n{}", usage())),
    }
}

/// The usage string.
pub fn usage() -> String {
    "\
aggsky — aggregate skyline queries (EDBT 2013 reproduction)

USAGE:
  aggsky skyline --csv FILE --group COL [options]   compute an aggregate skyline
  aggsky generate --dist DIST --records N [options] emit a synthetic dataset as CSV
  aggsky sql [--querylog FILE] FILE...              run SQL statements (- = stdin)
  aggsky profile diff OLD NEW [--threshold PCT]     compare two profile snapshots

skyline options:
  --gamma G          dominance threshold in [0.5, 1] (default 0.5)
  --algorithm A      NL0 | NL | TR | SI | IN | LO (default IN)
  --min COL          treat COL as minimize (repeatable; default: maximize all)
  --exact            use provably-exact pruning (default: paper pruning)
  --threads N        run the parallel extension with N workers (0 = all cores);
                     overrides --algorithm
  --budget TICKS     stop after roughly TICKS record-pair comparisons and
                     print the confirmed partial skyline (0 = unlimited)
  --checkpoint-dir D persist the run as durable crash-consistent frames under
                     directory D (uses the resumable anytime engine; combine
                     with --budget to checkpoint a bounded chunk per run)
  --resume           recover from the newest valid frame in --checkpoint-dir
                     instead of starting the directory over
  --rank             also print groups by minimum qualifying gamma
  --trace FILE       record a Chrome trace-event JSON of the run (load it in
                     Perfetto / chrome://tracing)
  --metrics FILE     write the run's counters and histograms in Prometheus
                     text exposition format
  --profile FILE     save a versioned profile snapshot (counters, span
                     totals, sketch quantiles) for later `profile diff`
  --flight DIR       attach the always-on flight recorder; interrupts and
                     faults auto-dump the recent-event ring as Chrome-trace
                     JSON under DIR (mutually exclusive with --trace/--metrics)

sql options:
  --querylog FILE    write the structured query log (one JSON record per
                     statement) as JSON Lines

profile diff options:
  --threshold PCT    flag counters/spans that grew more than PCT percent
                     (default 10)

generate options:
  --dist DIST        anti | ind | corr
  --records N        total records
  --groups N         number of groups (default records/100)
  --dim D            dimensions (default 5)
  --spread S         class spread fraction (default 0.2)
  --zipf EXP         Zipfian group sizes with this exponent (default uniform)
  --seed S           RNG seed (default 42)
"
    .to_string()
}

/// Parses `--key value` style flags; returns (flags, repeated --min values).
struct Flags {
    pairs: Vec<(String, String)>,
    bools: Vec<String>,
}

impl Flags {
    fn parse(args: &[String], bool_flags: &[&str]) -> Result<Flags, CliError> {
        let mut pairs = Vec::new();
        let mut bools = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            let Some(key) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument {a:?}"));
            };
            if bool_flags.contains(&key) {
                bools.push(key.to_string());
                i += 1;
                continue;
            }
            let value = args.get(i + 1).ok_or_else(|| format!("--{key} expects a value"))?.clone();
            pairs.push((key.to_string(), value));
            i += 2;
        }
        Ok(Flags { pairs, bools })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    fn get_all(&self, key: &str) -> Vec<&str> {
        self.pairs.iter().filter(|(k, _)| k == key).map(|(_, v)| v.as_str()).collect()
    }

    fn has(&self, key: &str) -> bool {
        self.bools.iter().any(|b| b == key)
    }

    fn require(&self, key: &str) -> Result<&str, CliError> {
        self.get(key).ok_or_else(|| format!("missing required flag --{key}"))
    }

    fn parse_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: invalid value {v:?}")),
        }
    }
}

fn skyline_command(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args, &["rank", "exact", "resume"])?;
    let path = flags.require("csv")?;
    let group_col = flags.require("group")?;
    let gamma = Gamma::new(flags.parse_num("gamma", 0.5)?).map_err(|e| e.to_string())?;
    let algorithm = match flags.get("algorithm").unwrap_or("IN") {
        "NL0" | "nl0" => Algorithm::Naive,
        "NL" | "nl" => Algorithm::NestedLoop,
        "TR" | "tr" => Algorithm::Transitive,
        "SI" | "si" => Algorithm::Sorted,
        "IN" | "in" => Algorithm::Indexed,
        "LO" | "lo" => Algorithm::IndexedBbox,
        other => return Err(format!("unknown algorithm {other:?}")),
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;

    // Map --min column names onto dimensions via the CSV header.
    let value_cols =
        aggsky_datagen::csv_value_columns(&text, group_col).map_err(|e| format!("{path}: {e}"))?;
    let mins = flags.get_all("min");
    for m in &mins {
        if !value_cols.iter().any(|c| c.eq_ignore_ascii_case(m)) {
            return Err(format!("--min {m:?}: no such value column (have {value_cols:?})"));
        }
    }
    let directions: Vec<Direction> = value_cols
        .iter()
        .map(|c| {
            if mins.iter().any(|m| m.eq_ignore_ascii_case(c)) {
                Direction::Min
            } else {
                Direction::Max
            }
        })
        .collect();

    let ds = parse_grouped_csv(&text, group_col, Some(&directions))
        .map_err(|e| format!("{path}: {e}"))?;
    let opts = if flags.has("exact") {
        AlgoOptions::exact(gamma)
    } else {
        AlgoOptions { pruning: Pruning::Paper, ..AlgoOptions::paper(gamma) }
    };
    let threads: Option<usize> = match flags.get("threads") {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| format!("--threads: invalid value {v:?}"))?),
    };
    let budget: u64 = flags.parse_num("budget", 0u64)?;
    let ctx = if budget == 0 { RunContext::unlimited() } else { RunContext::with_budget(budget) };
    let ckpt_dir = flags.get("checkpoint-dir").map(str::to_string);
    if flags.has("resume") && ckpt_dir.is_none() {
        return Err("--resume requires --checkpoint-dir".to_string());
    }
    if ckpt_dir.is_some() && threads.is_some() {
        return Err("--checkpoint-dir uses the resumable anytime engine; drop --threads".into());
    }
    let trace_path = flags.get("trace").map(str::to_string);
    let metrics_path = flags.get("metrics").map(str::to_string);
    let profile_path = flags.get("profile").map(str::to_string);
    let flight_dir = flags.get("flight").map(str::to_string);
    if flight_dir.is_some()
        && (trace_path.is_some() || metrics_path.is_some() || profile_path.is_some())
    {
        return Err(
            "--flight replaces the full trace recorder; drop --trace/--metrics/--profile".into()
        );
    }
    let recorder = (trace_path.is_some() || metrics_path.is_some() || profile_path.is_some())
        .then(|| Arc::new(TraceRecorder::new()));
    let flight = flight_dir.as_ref().map(|dir| {
        Arc::new(
            FlightRecorder::with_capacity(aggsky_obs::DEFAULT_FLIGHT_CAPACITY).with_dump_dir(dir),
        )
    });
    let ctx = if let Some(f) = &flight {
        ctx.with_recorder(Arc::clone(f) as Arc<dyn aggsky_obs::Recorder>)
    } else if let Some(rec) = &recorder {
        ctx.with_recorder(Arc::clone(rec) as Arc<dyn aggsky_obs::Recorder>)
    } else {
        ctx
    };
    let (outcome, algo_name) = if let Some(dir) = &ckpt_dir {
        let store = crate::core::CheckpointStore::open(std::path::Path::new(dir))
            .map_err(|e| e.to_string())?;
        if !flags.has("resume") {
            // A non-resuming run owns the directory: start it over so stale
            // frames from an earlier dataset cannot be mistaken for ours.
            store.clear().map_err(|e| e.to_string())?;
        }
        let step =
            crate::core::checkpoint_step(&ds, gamma, &ctx, &store).map_err(|e| e.to_string())?;
        let r = &step.result;
        let outcome = if step.is_complete() {
            Outcome::Complete(crate::core::SkylineResult {
                skyline: r.confirmed_in.clone(),
                stats: r.stats,
            })
        } else {
            Outcome::Interrupted {
                reason: step.interrupt.unwrap_or(crate::core::InterruptReason::BudgetExhausted),
                partial: r.clone(),
            }
        };
        let mut name = String::from("ANYTIME(durable");
        match step.resumed_seq {
            Some(seq) => write!(name, ", resumed frame {seq}").unwrap(),
            None => name.push_str(", cold start"),
        }
        if let Some(seq) = step.saved_seq {
            write!(name, ", saved frame {seq}").unwrap();
        }
        if step.frames_skipped > 0 {
            write!(name, ", {} torn frame(s) skipped", step.frames_skipped).unwrap();
        }
        name.push(')');
        (outcome, name)
    } else {
        match threads {
            Some(t) => (
                parallel_skyline_ctx(&ds, gamma, t, KernelConfig::blocked(), &ctx)
                    .map_err(|e| e.to_string())?,
                format!("PAR({} threads)", resolve_threads(t)),
            ),
            None => (
                algorithm.run_ctx(&ds, opts, &ctx).map_err(|e| e.to_string())?,
                algorithm.short_name().to_string(),
            ),
        }
    };

    let mut out = String::new();
    writeln!(
        out,
        "{} groups, {} records, {} dimensions; gamma = {}, algorithm = {}",
        ds.n_groups(),
        ds.n_records(),
        ds.dim(),
        gamma,
        algo_name
    )
    .unwrap();
    match &outcome {
        Outcome::Complete(result) => {
            writeln!(out, "aggregate skyline ({} groups):", result.skyline.len()).unwrap();
            for label in ds.sorted_labels(&result.skyline) {
                writeln!(out, "  {label}").unwrap();
            }
            writeln!(
                out,
                "({} group pairs compared, {} record pairs checked)",
                result.stats.group_pairs, result.stats.record_pairs
            )
            .unwrap();
        }
        Outcome::Interrupted { reason, partial } => {
            writeln!(
                out,
                "interrupted ({reason}) after {} record pairs",
                partial.stats.record_pairs
            )
            .unwrap();
            writeln!(out, "confirmed skyline members ({} groups):", partial.confirmed_in.len())
                .unwrap();
            for label in ds.sorted_labels(&partial.confirmed_in) {
                writeln!(out, "  {label}").unwrap();
            }
            writeln!(
                out,
                "({} groups confirmed out, {} undecided)",
                partial.confirmed_out.len(),
                partial.undecided.len()
            )
            .unwrap();
        }
    }
    let stats = outcome.stats();
    writeln!(
        out,
        "(blocks: {} full, {} skipped; workers: {} retries, {} quarantined)",
        stats.blocks_full, stats.blocks_skipped, stats.worker_retries, stats.workers_quarantined
    )
    .unwrap();
    if let Some(rec) = &recorder {
        let snapshot = rec.snapshot();
        // Surface the durable-checkpoint counters (core `Stats` has no
        // checkpoint fields — they live only in the metric registry).
        let saves = snapshot.metrics.counter(Counter::CheckpointSaves);
        let loads = snapshot.metrics.counter(Counter::CheckpointLoads);
        let torn = snapshot.metrics.counter(Counter::CheckpointFramesSkipped);
        if saves + loads + torn > 0 {
            let frames = snapshot.metrics.hist(Hist::CheckpointFrameBytes);
            writeln!(
                out,
                "(checkpoints: {saves} saved, {loads} loaded, {torn} torn skipped; frame bytes: \
                 count={} sum={})",
                frames.count, frames.sum
            )
            .unwrap();
        }
        if let Some(path) = &trace_path {
            std::fs::write(path, export_chrome(&snapshot)).map_err(|e| format!("{path}: {e}"))?;
            writeln!(out, "trace written to {path}").unwrap();
        }
        if let Some(path) = &metrics_path {
            std::fs::write(path, export_prometheus(&snapshot.metrics))
                .map_err(|e| format!("{path}: {e}"))?;
            writeln!(out, "metrics written to {path}").unwrap();
        }
        if let Some(path) = &profile_path {
            ProfileSnapshot::from_trace(&snapshot)
                .save(std::path::Path::new(path))
                .map_err(|e| e.to_string())?;
            writeln!(out, "profile written to {path}").unwrap();
        }
    }
    if let (Some(f), Some(dir)) = (&flight, &flight_dir) {
        writeln!(
            out,
            "flight recorder: {} entries retained, {} dump(s) under {dir}",
            f.ring_len(),
            f.dumps().len()
        )
        .unwrap();
    }
    if flags.has("rank") {
        writeln!(out, "\ngroups by minimum qualifying gamma:").unwrap();
        for rg in ranked_skyline(&ds) {
            writeln!(out, "  {:<24} gamma >= {:.3}", ds.label(rg.group), rg.min_gamma.max(0.5))
                .unwrap();
        }
    }
    Ok(out)
}

fn generate_command(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args, &[])?;
    let dist = match flags.require("dist")? {
        "anti" => Distribution::AntiCorrelated,
        "ind" => Distribution::Independent,
        "corr" => Distribution::Correlated,
        other => return Err(format!("unknown distribution {other:?} (anti|ind|corr)")),
    };
    let records: usize =
        flags.require("records")?.parse().map_err(|_| "--records: invalid number".to_string())?;
    let groups = flags.parse_num("groups", (records / 100).max(1))?;
    let dim = flags.parse_num("dim", 5usize)?;
    let spread = flags.parse_num("spread", 0.2f64)?;
    let seed = flags.parse_num("seed", 42u64)?;
    let group_sizes = match flags.get("zipf") {
        None => GroupSizes::Uniform,
        Some(v) => GroupSizes::Zipf(v.parse().map_err(|_| "--zipf: invalid exponent".to_string())?),
    };
    let cfg = SyntheticConfig {
        n_records: records,
        n_groups: groups,
        dim,
        distribution: dist,
        spread,
        group_sizes,
        seed,
    };
    let ds = cfg.generate();
    let names: Vec<String> = (0..dim).map(|d| format!("d{d}")).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    Ok(to_grouped_csv(&ds, "class", &name_refs))
}

fn sql_command(args: &[String]) -> Result<String, CliError> {
    // `--querylog FILE` may appear anywhere; everything else is a script
    // path (`-` = stdin).
    let mut querylog_path: Option<String> = None;
    let mut files: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--querylog" {
            let v = args.get(i + 1).ok_or_else(|| "--querylog expects a value".to_string())?;
            querylog_path = Some(v.clone());
            i += 2;
        } else {
            files.push(&args[i]);
            i += 1;
        }
    }
    if files.is_empty() {
        return Err("sql: expected at least one file (or - for stdin)".into());
    }
    let mut db = crate::Database::new();
    let mut out = String::new();
    for path in files {
        let text = if path == "-" {
            use std::io::Read;
            let mut buf = String::new();
            std::io::stdin().read_to_string(&mut buf).map_err(|e| format!("stdin: {e}"))?;
            buf
        } else {
            std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?
        };
        for stmt in aggsky_sql::split_script(&text) {
            let result = db.execute(&stmt).map_err(|e| format!("{e}\n  in: {stmt}"))?;
            out.push_str(&result.to_table());
            out.push('\n');
        }
    }
    if let Some(path) = &querylog_path {
        std::fs::write(path, db.journal().export_jsonl()).map_err(|e| format!("{path}: {e}"))?;
        writeln!(out, "query log ({} statement(s)) written to {path}", db.journal().len()).unwrap();
    }
    Ok(out)
}

/// `aggsky profile diff OLD NEW [--threshold PCT]`: load two persisted
/// profile snapshots and print per-counter / per-span deltas, flagging
/// relative regressions past the threshold.
fn profile_command(args: &[String]) -> Result<String, CliError> {
    match args.first().map(String::as_str) {
        Some("diff") => {
            let old_path = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or_else(|| "profile diff: expected OLD snapshot path".to_string())?;
            let new_path = args
                .get(2)
                .filter(|a| !a.starts_with("--"))
                .ok_or_else(|| "profile diff: expected NEW snapshot path".to_string())?;
            let flags = Flags::parse(&args[3..], &[])?;
            let threshold: u64 = flags.parse_num("threshold", 10u64)?;
            let old =
                ProfileSnapshot::load(std::path::Path::new(old_path)).map_err(|e| e.to_string())?;
            let new =
                ProfileSnapshot::load(std::path::Path::new(new_path)).map_err(|e| e.to_string())?;
            let (text, _regressions) = render_profile_diff(&old, &new, threshold);
            Ok(text)
        }
        _ => Err(format!("profile: expected `diff OLD NEW [--threshold PCT]`\n\n{}", usage())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(run_command(&[]).unwrap().contains("USAGE"));
        assert!(run_command(&s(&["help"])).unwrap().contains("USAGE"));
        let err = run_command(&s(&["frobnicate"])).unwrap_err();
        assert!(err.contains("unknown subcommand"));
    }

    #[test]
    fn generate_then_skyline_round_trip() {
        let csv = run_command(&s(&[
            "generate",
            "--dist",
            "ind",
            "--records",
            "300",
            "--groups",
            "6",
            "--dim",
            "3",
            "--seed",
            "7",
        ]))
        .unwrap();
        assert!(csv.starts_with("class,d0,d1,d2"));
        assert_eq!(csv.lines().count(), 301);

        let dir = std::env::temp_dir().join("aggsky_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gen.csv");
        std::fs::write(&path, &csv).unwrap();
        let out = run_command(&s(&[
            "skyline",
            "--csv",
            path.to_str().unwrap(),
            "--group",
            "class",
            "--rank",
            "--algorithm",
            "LO",
        ]))
        .unwrap();
        assert!(out.contains("6 groups, 300 records, 3 dimensions"));
        assert!(out.contains("aggregate skyline"));
        assert!(out.contains("minimum qualifying gamma"));
    }

    #[test]
    fn skyline_respects_min_columns_and_gamma() {
        let dir = std::env::temp_dir().join("aggsky_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shops.csv");
        // b is pricier than both of a's offers at no better rating: with
        // price minimized, every a-offer dominates it.
        std::fs::write(&path, "shop,price,rating\na,10,4\na,12,5\nb,30,3\nc,9,2\n").unwrap();
        let out = run_command(&s(&[
            "skyline",
            "--csv",
            path.to_str().unwrap(),
            "--group",
            "shop",
            "--min",
            "price",
            "--exact",
        ]))
        .unwrap();
        assert!(out.contains("  a\n"), "{out}");
        assert!(out.contains("  c\n"), "cheapest shop survives: {out}");
        assert!(!out.contains("  b\n"), "b is beaten on price: {out}");
        // Unknown --min column is rejected.
        let err = run_command(&s(&[
            "skyline",
            "--csv",
            path.to_str().unwrap(),
            "--group",
            "shop",
            "--min",
            "zzz",
        ]))
        .unwrap_err();
        assert!(err.contains("no such value column"));
        // Invalid gamma is rejected.
        let err = run_command(&s(&[
            "skyline",
            "--csv",
            path.to_str().unwrap(),
            "--group",
            "shop",
            "--gamma",
            "0.2",
        ]))
        .unwrap_err();
        assert!(err.contains("asymmetry"), "{err}");
    }

    #[test]
    fn threads_flag_runs_parallel_extension() {
        let dir = std::env::temp_dir().join("aggsky_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("par.csv");
        std::fs::write(&path, "shop,price,rating\na,10,4\na,12,5\nb,30,3\nc,9,2\n").unwrap();
        let base = run_command(&s(&[
            "skyline",
            "--csv",
            path.to_str().unwrap(),
            "--group",
            "shop",
            "--exact",
        ]))
        .unwrap();
        for threads in ["0", "1", "3"] {
            let out = run_command(&s(&[
                "skyline",
                "--csv",
                path.to_str().unwrap(),
                "--group",
                "shop",
                "--threads",
                threads,
            ]))
            .unwrap();
            assert!(out.contains("algorithm = PAR("), "{out}");
            // Same skyline lines as the sequential exact run.
            let members = |text: &str| -> Vec<String> {
                text.lines().filter(|l| l.starts_with("  ")).map(|l| l.trim().to_string()).collect()
            };
            assert_eq!(members(&out), members(&base), "threads={threads}");
        }
        let err = run_command(&s(&[
            "skyline",
            "--csv",
            path.to_str().unwrap(),
            "--group",
            "shop",
            "--threads",
            "x",
        ]))
        .unwrap_err();
        assert!(err.contains("--threads"), "{err}");
    }

    #[test]
    fn checkpoint_dir_persists_and_resume_recovers() {
        let dir = std::env::temp_dir().join("aggsky_cli_ckpt");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("data.csv");
        std::fs::write(&csv, "shop,price,rating\na,10,4\na,12,5\nb,30,3\nc,9,2\n").unwrap();
        let frames = dir.join("frames");
        let base = run_command(&s(&[
            "skyline",
            "--csv",
            csv.to_str().unwrap(),
            "--group",
            "shop",
            "--exact",
        ]))
        .unwrap();
        let members = |text: &str| -> Vec<String> {
            text.lines().filter(|l| l.starts_with("  ")).map(|l| l.trim().to_string()).collect()
        };
        let durable = run_command(&s(&[
            "skyline",
            "--csv",
            csv.to_str().unwrap(),
            "--group",
            "shop",
            "--checkpoint-dir",
            frames.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(durable.contains("ANYTIME(durable, cold start, saved frame"), "{durable}");
        assert_eq!(members(&durable), members(&base));
        // Resuming serves the completed partition from the durable frame.
        let resumed = run_command(&s(&[
            "skyline",
            "--csv",
            csv.to_str().unwrap(),
            "--group",
            "shop",
            "--checkpoint-dir",
            frames.to_str().unwrap(),
            "--resume",
        ]))
        .unwrap();
        assert!(resumed.contains("resumed frame"), "{resumed}");
        assert_eq!(members(&resumed), members(&base));
        // Budgeted chunks persist progress and converge across runs: the
        // first chunk starts the directory over, every later one resumes.
        let gen = run_command(&s(&[
            "generate",
            "--dist",
            "anti",
            "--records",
            "200",
            "--groups",
            "8",
            "--dim",
            "3",
            "--seed",
            "9",
        ]))
        .unwrap();
        let big = dir.join("big.csv");
        std::fs::write(&big, &gen).unwrap();
        let big_frames = dir.join("big-frames");
        let exact = run_command(&s(&[
            "skyline",
            "--csv",
            big.to_str().unwrap(),
            "--group",
            "class",
            "--exact",
        ]))
        .unwrap();
        let mut args = vec![
            "skyline",
            "--csv",
            big.to_str().unwrap(),
            "--group",
            "class",
            "--checkpoint-dir",
            big_frames.to_str().unwrap(),
            "--budget",
            "500",
        ];
        let first = run_command(&s(&args)).unwrap();
        assert!(first.contains("interrupted"), "500 ticks should not finish: {first}");
        args.push("--resume");
        let mut rounds = 0;
        let converged = loop {
            let out = run_command(&s(&args)).unwrap();
            if !out.contains("interrupted") {
                break out;
            }
            rounds += 1;
            assert!(rounds < 1000, "durable CLI chain did not converge");
        };
        assert_eq!(members(&converged), members(&exact), "durable chain diverged");
        // Flag validation.
        let err = run_command(&s(&[
            "skyline",
            "--csv",
            csv.to_str().unwrap(),
            "--group",
            "shop",
            "--resume",
        ]))
        .unwrap_err();
        assert!(err.contains("--resume requires --checkpoint-dir"), "{err}");
        let err = run_command(&s(&[
            "skyline",
            "--csv",
            csv.to_str().unwrap(),
            "--group",
            "shop",
            "--checkpoint-dir",
            frames.to_str().unwrap(),
            "--threads",
            "2",
        ]))
        .unwrap_err();
        assert!(err.contains("drop --threads"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_and_metrics_flags_write_valid_exports() {
        let dir = std::env::temp_dir().join("aggsky_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("obs.csv");
        std::fs::write(&csv, "shop,price,rating\na,10,4\na,12,5\nb,30,3\nc,9,2\n").unwrap();
        let trace = dir.join("obs_trace.json");
        let prom = dir.join("obs_metrics.prom");
        let out = run_command(&s(&[
            "skyline",
            "--csv",
            csv.to_str().unwrap(),
            "--group",
            "shop",
            "--exact",
            "--trace",
            trace.to_str().unwrap(),
            "--metrics",
            prom.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("trace written to"), "{out}");
        assert!(out.contains("metrics written to"), "{out}");
        assert!(out.contains("blocks:"), "extended stats line missing: {out}");
        assert!(out.contains("workers:"), "extended stats line missing: {out}");
        let trace_text = std::fs::read_to_string(&trace).unwrap();
        assert!(trace_text.starts_with("[\n"), "not a JSON array: {trace_text}");
        assert!(trace_text.contains("\"ph\":\"X\""), "no complete events: {trace_text}");
        let prom_text = std::fs::read_to_string(&prom).unwrap();
        aggsky_obs::validate_prometheus(&prom_text).unwrap();
        assert!(prom_text.contains("aggsky_record_pairs_total"), "{prom_text}");
    }

    #[test]
    fn profile_flag_saves_snapshot_and_diff_flags_regressions() {
        let dir = std::env::temp_dir().join("aggsky_cli_profile");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let small = dir.join("small.csv");
        std::fs::write(&small, "shop,price,rating\na,10,4\na,12,5\nb,30,3\nc,9,2\n").unwrap();
        let gen = run_command(&s(&[
            "generate",
            "--dist",
            "anti",
            "--records",
            "400",
            "--groups",
            "10",
            "--dim",
            "3",
            "--seed",
            "11",
        ]))
        .unwrap();
        let big = dir.join("big.csv");
        std::fs::write(&big, &gen).unwrap();
        let prof_a = dir.join("a.prof");
        let prof_b = dir.join("b.prof");
        let out = run_command(&s(&[
            "skyline",
            "--csv",
            small.to_str().unwrap(),
            "--group",
            "shop",
            "--profile",
            prof_a.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("profile written to"), "{out}");
        run_command(&s(&[
            "skyline",
            "--csv",
            big.to_str().unwrap(),
            "--group",
            "class",
            "--profile",
            prof_b.to_str().unwrap(),
        ]))
        .unwrap();
        // Identical snapshots: zero regressions.
        let same = run_command(&s(&[
            "profile",
            "diff",
            prof_a.to_str().unwrap(),
            prof_a.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(same.contains("regressions: 0"), "{same}");
        // The 400-record anti-correlated run does strictly more pair work:
        // the diff must flag the growth.
        let diff = run_command(&s(&[
            "profile",
            "diff",
            prof_a.to_str().unwrap(),
            prof_b.to_str().unwrap(),
            "--threshold",
            "25",
        ]))
        .unwrap();
        assert!(diff.contains("aggsky_record_pairs_total"), "{diff}");
        assert!(diff.contains("REGRESSION"), "{diff}");
        assert!(!diff.contains("regressions: 0"), "{diff}");
        // Bad invocations.
        assert!(run_command(&s(&["profile"])).unwrap_err().contains("diff OLD NEW"));
        assert!(run_command(&s(&["profile", "diff", "only-one"]))
            .unwrap_err()
            .contains("expected NEW snapshot"));
        let err = run_command(&s(&[
            "profile",
            "diff",
            small.to_str().unwrap(),
            prof_a.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.contains("corrupt"), "CSV is not a profile: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flight_flag_dumps_on_budget_interrupt() {
        let dir = std::env::temp_dir().join("aggsky_cli_flight");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let gen = run_command(&s(&[
            "generate",
            "--dist",
            "anti",
            "--records",
            "300",
            "--groups",
            "8",
            "--dim",
            "3",
            "--seed",
            "13",
        ]))
        .unwrap();
        let csv = dir.join("data.csv");
        std::fs::write(&csv, &gen).unwrap();
        let dumps = dir.join("dumps");
        let out = run_command(&s(&[
            "skyline",
            "--csv",
            csv.to_str().unwrap(),
            "--group",
            "class",
            "--budget",
            "200",
            "--flight",
            dumps.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("interrupted (budget exhausted)"), "{out}");
        assert!(out.contains("flight recorder:"), "{out}");
        assert!(out.contains("1 dump(s)"), "{out}");
        let dump_path = dumps.join("flight-000-budget_exhausted.json");
        let json = std::fs::read_to_string(&dump_path).unwrap();
        assert!(json.starts_with("[\n"), "dump is a Chrome-trace array: {json}");
        assert!(json.contains("budget_exhausted") || json.contains("\"ph\""), "{json}");
        // --flight excludes the full-trace exports.
        let err = run_command(&s(&[
            "skyline",
            "--csv",
            csv.to_str().unwrap(),
            "--group",
            "class",
            "--flight",
            dumps.to_str().unwrap(),
            "--trace",
            dir.join("t.json").to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.contains("--flight"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sql_querylog_flag_writes_deterministic_jsonl() {
        let dir = std::env::temp_dir().join("aggsky_cli_querylog");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let script = dir.join("script.sql");
        std::fs::write(
            &script,
            "CREATE TABLE m (d TEXT, p FLOAT, q FLOAT);\n\
             INSERT INTO m VALUES ('a', 1, 9), ('a', 2, 8), ('b', 5, 5), ('c', 0, 0);\n\
             SET SLOW_QUERY 1;\n\
             SELECT d FROM m GROUP BY d SKYLINE OF p MAX, q MAX;",
        )
        .unwrap();
        let log = dir.join("queries.jsonl");
        let run = || {
            let out = run_command(&s(&[
                "sql",
                "--querylog",
                log.to_str().unwrap(),
                script.to_str().unwrap(),
            ]))
            .unwrap();
            assert!(out.contains("query log (4 statement(s)) written to"), "{out}");
            std::fs::read_to_string(&log).unwrap()
        };
        let a = run();
        assert_eq!(a, run(), "same script, same query-log bytes");
        assert_eq!(a.lines().count(), 4);
        assert!(a.contains("\"kind\":\"select\""), "{a}");
        assert!(a.contains("\"slow\":true"), "skyline select crosses the 1-tick threshold: {a}");
        assert!(a.contains("skyline(d=2)"), "{a}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sql_script_execution() {
        let dir = std::env::temp_dir().join("aggsky_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("script.sql");
        std::fs::write(
            &path,
            "CREATE TABLE m (d TEXT, p FLOAT, q FLOAT);\n\
             INSERT INTO m VALUES ('x; not a separator', 1, 1), ('b', 5, 5);\n\
             SELECT d FROM m GROUP BY d SKYLINE OF p MAX, q MAX;",
        )
        .unwrap();
        let out = run_command(&s(&["sql", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("| b"), "{out}");
        assert!(!out.contains("not a separator |"), "dominated group filtered: {out}");
    }

    #[test]
    fn flag_parser_errors() {
        assert!(run_command(&s(&["skyline", "positional"])).unwrap_err().contains("unexpected"));
        assert!(run_command(&s(&["skyline", "--csv"])).unwrap_err().contains("expects a value"));
        assert!(run_command(&s(&["skyline", "--csv", "x.csv"]))
            .unwrap_err()
            .contains("missing required flag --group"));
    }

    #[test]
    fn statement_splitting_respects_strings() {
        let stmts = aggsky_sql::split_script("a 'x;y'; b;; c");
        assert_eq!(stmts, vec!["a 'x;y'", "b", "c"]);
    }
}
