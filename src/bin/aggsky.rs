//! The `aggsky` command-line tool; see `aggsky help`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match aggsky::cli::run_command(&args) {
        Ok(out) => print!("{out}"),
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}
