//! # aggsky — aggregate skyline queries on grouped data
//!
//! A from-scratch Rust implementation of *"From Stars to Galaxies: skyline
//! queries on aggregate data"* (M. Magnani, I. Assent, EDBT 2013): the
//! γ-dominance aggregate-skyline operator, its five evaluation algorithms
//! (NL, TR, SI, IN, LO), the spatial index and mini SQL engine substrates,
//! and the paper's full benchmark suite.
//!
//! This facade crate re-exports the member crates:
//!
//! * [`core`] — the operator and algorithms,
//! * [`spatial`] — the d-dimensional R-tree,
//! * [`sql`] — the mini SQL engine with `SKYLINE OF` support,
//! * [`datagen`] — workload generators.
//!
//! The most common items are re-exported at the top level:
//!
//! ```
//! use aggsky::{Algorithm, Gamma, GroupedDatasetBuilder};
//!
//! let mut b = GroupedDatasetBuilder::new(2);
//! b.push_group("Tarantino", &[vec![313.0, 8.2], vec![557.0, 9.0]]).unwrap();
//! b.push_group("Wiseau", &[vec![10.0, 3.2]]).unwrap();
//! let ds = b.build().unwrap();
//! let result = Algorithm::Indexed.run(&ds, Gamma::DEFAULT);
//! assert_eq!(ds.sorted_labels(&result.skyline), vec!["Tarantino"]);
//! ```

#![warn(missing_docs)]

pub mod cli;

pub use aggsky_core as core;
pub use aggsky_datagen as datagen;
pub use aggsky_spatial as spatial;
pub use aggsky_sql as sql;

pub use aggsky_core::{
    anytime_resume, anytime_skyline, anytime_skyline_ctx, domination_probability, gamma_dominates,
    naive_skyline, parallel_skyline, ranked_skyline, AlgoOptions, Algorithm, AnytimeCheckpoint,
    AnytimeResult, CancelToken, Direction, DynamicAggregateSkyline, Epoch, EpochReceipt, Gamma,
    GroupedDataset, GroupedDatasetBuilder, InterruptReason, Outcome, Pruning, RunContext,
    SkylineResult, SkylineService, SortStrategy, WriteBatch, WriteOp,
};
pub use aggsky_sql::Database;
