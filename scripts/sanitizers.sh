#!/usr/bin/env bash
# Sanitizer gates for the unsafe/concurrent core (DESIGN.md §14).
#
# 1. ThreadSanitizer over the scheduler chaos + pair-granular retry suites:
#    the work-stealing scheduler and its atomics are the riskiest
#    concurrency surface in the workspace. The L8 allowlist documents the
#    *intended* happens-before edges; TSan checks the actual ones under
#    seeded fault injection.
# 2. Miri over the columnar differential suite with AGGSKY_FORCE_SCALAR=1:
#    the scalar columnar kernel is the oracle the unsafe AVX2 module is
#    pinned bit-identical against, so its memory model must be spotless.
#
# Both gates need nightly-only components. On toolchains that lack them the
# gate prints a visible `SKIP(<gate>): <reason>` line and the script still
# exits 0 — a skip must never masquerade as a pass, but must not fail
# machines that cannot run the tool either. Real races/UB exit nonzero.

set -u
cd "$(dirname "$0")/.."

status=0

echo "== sanitizers: ThreadSanitizer (scheduler chaos + retry suites) =="
if ! cargo +nightly --version >/dev/null 2>&1; then
    echo "SKIP(tsan): no nightly toolchain (rustup toolchain install nightly)"
else
    target="$(rustc +nightly -vV | sed -n 's/^host: //p')"
    case "$target" in
        x86_64-unknown-linux-gnu | aarch64-unknown-linux-gnu | x86_64-apple-darwin | aarch64-apple-darwin) ;;
        *)
            echo "SKIP(tsan): ThreadSanitizer unsupported on host target ${target}"
            target=""
            ;;
    esac
    if [ -n "$target" ]; then
        # std ships uninstrumented (no rust-src offline, so no -Zbuild-std);
        # -Cunsafe-allow-abi-mismatch lets the instrumented workspace link
        # against it, and tsan-suppressions.txt mutes the two known
        # libtest-harness reports that the uninstrumented std produces.
        export RUSTFLAGS="-Zsanitizer=thread -Cunsafe-allow-abi-mismatch=sanitizer"
        export TSAN_OPTIONS="suppressions=$PWD/tsan-suppressions.txt"
        if CARGO_TARGET_DIR=target/tsan cargo +nightly test -q --offline --target "$target" \
            -p aggsky-core --features chaos,invariants --lib &&
            CARGO_TARGET_DIR=target/tsan cargo +nightly test -q --offline --target "$target" \
                --features chaos,invariants --test chaos --test execution_control --test crash_recovery; then
            echo "PASS(tsan)"
        else
            echo "FAIL(tsan): data race or test failure under ThreadSanitizer"
            status=1
        fi
        unset RUSTFLAGS TSAN_OPTIONS
    fi
fi

echo "== sanitizers: Miri (scalar columnar differential) =="
if ! cargo +nightly miri --version >/dev/null 2>&1; then
    echo "SKIP(miri): miri component not installed (rustup component add miri --toolchain nightly)"
else
    # AGGSKY_FORCE_SCALAR pins the scalar columnar path: Miri cannot
    # execute AVX2 intrinsics, and the scalar kernel is exactly the oracle
    # the unsafe SIMD module is differentially pinned against. The env var
    # must be forwarded through Miri's isolation explicitly.
    if CARGO_TARGET_DIR=target/miri AGGSKY_FORCE_SCALAR=1 \
        MIRIFLAGS="-Zmiri-env-forward=AGGSKY_FORCE_SCALAR" \
        cargo +nightly miri test -q --offline --test columnar_differential; then
        echo "PASS(miri)"
    else
        echo "FAIL(miri): undefined behavior or test failure under Miri"
        status=1
    fi
fi

echo "== sanitizers: Miri (persist frame codec + checkpoint store) =="
if ! cargo +nightly miri --version >/dev/null 2>&1; then
    echo "SKIP(miri-persist): miri component not installed (rustup component add miri --toolchain nightly)"
else
    # The checkpoint store writes real files (temp + fsync + rename), so
    # Miri's default filesystem isolation must be lifted; fsync degrades to
    # a no-op under Miri, which is fine — the gate checks the codec's and
    # store's memory model, not crash durability (crash_recovery does that
    # natively).
    if CARGO_TARGET_DIR=target/miri \
        MIRIFLAGS="-Zmiri-disable-isolation" \
        cargo +nightly miri test -q --offline -p aggsky-core --features invariants persist; then
        echo "PASS(miri-persist)"
    else
        echo "FAIL(miri-persist): undefined behavior or test failure under Miri"
        status=1
    fi
fi

exit $status
